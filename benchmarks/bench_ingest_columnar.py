"""Columnar vs element-wise ingest throughput (single core).

Writes one synthetic labelled graph to a JSON-lines file, decodes the
records once, then ingests the same decoded records twice into a
streaming :class:`SchemaSession`:

* ``element`` -- records become ``Node``/``Edge`` dataclasses
  (:func:`record_to_element`), :func:`changesets_from_elements` groups
  them, the session materialises a ``PropertyGraph`` per change-set,
  and the pipeline walks property dicts per element in every layer;
* ``columnar`` -- records intern into raw rows
  (:func:`columnar_rows_from_records`) and group into
  :class:`ElementBatch` payloads; the pipeline signs one MinHash
  pattern per distinct structure and accumulators fold value columns.

The timed region starts at the decoded records on both sides, so the
gated speedup measures the *ingestion pipelines* -- element
construction, grouping, preprocessing, LSH, extraction, accumulation --
not the shared JSON byte decoding (which is file-format cost and
identical in both runs).  End-to-end from-disk timings (decode
included) are measured and reported as well.

Correctness gate (always on, both modes): all schemas must be
fingerprint-identical.  Speedup gate (also always on, both modes):
every measured size must reach its entry in ``MIN_SPEEDUP_BY_SCALE``
or the run fails (exit 1).  Thresholds are per scale because speedup
grows with element count (fixed per-batch costs amortise); a single
flat gate either under-constrains small sizes or can never pass at
them.  ``--quick`` (CI) runs only the smallest size but still enforces
that size's gate.  The trajectory merges into ``BENCH_ingest.json``
(or ``--json PATH``) under the ``ingest_columnar`` key, alongside
``bench_dedup_ingest.py``'s ``dedup_ingest`` section.

Run:        PYTHONPATH=src python benchmarks/bench_ingest_columnar.py
Quick (CI): PYTHONPATH=src python benchmarks/bench_ingest_columnar.py --quick
JSON:       ... --json BENCH_ingest.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_common import merge_json

from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.session import SchemaSession
from repro.graph.changes import changesets_from_elements
from repro.graph.columnar import columnar_changesets_from_rows
from repro.graph.json_io import (
    columnar_rows_from_records,
    iter_changesets_jsonl,
    iter_columnar_changesets_jsonl,
    record_to_element,
    write_graph_jsonl,
)
from repro.graph.model import Edge, Node, PropertyGraph
from repro.schema.model import schema_fingerprint

SEED = 2026
#: Acceptance scale (ISSUE 5): >= 3x single-core ingest at 100k elements.
FULL_SIZES = (10_000, 100_000)
QUICK_SIZES = (10_000,)
#: Per-scale speedup floors, enforced at *every* measured size in both
#: full and --quick modes.  Measured trajectory: ~2.6x at 10k (fixed
#: per-batch costs still visible), ~3.5x at 100k where the paper-scale
#: >=3x acceptance gate applies.
MIN_SPEEDUP_BY_SCALE = {10_000: 2.0, 100_000: 3.0}
BATCH_SIZE = 5_000
#: Best-of-N timing (this is a throughput gate; min damps scheduler noise).
REPEATS = 2
#: Node share of the element budget (rest becomes edges).
NODE_SHARE = 0.6

LABEL_SETS = (
    frozenset({"Person"}),
    frozenset({"Person", "Student"}),
    frozenset({"City"}),
    frozenset({"Company"}),
    frozenset(),
)
EDGE_LABEL_SETS = (frozenset({"KNOWS"}), frozenset({"WORKS_AT"}))


def synthetic_graph(element_count: int, seed: int) -> PropertyGraph:
    """One labelled graph with mixed-type, partially-optional properties."""
    rng = np.random.default_rng(seed)
    node_count = int(element_count * NODE_SHARE)
    edge_count = element_count - node_count
    graph = PropertyGraph(f"ingest-{element_count}")
    for index in range(node_count):
        labels = LABEL_SETS[int(rng.integers(0, len(LABEL_SETS)))]
        properties = {"name": f"name{index}"}
        if rng.random() < 0.6:
            properties["age"] = int(rng.integers(0, 90))
        if rng.random() < 0.4:
            properties["score"] = float(rng.random()) * 10 + 0.5
        if rng.random() < 0.2:
            properties["active"] = bool(rng.random() < 0.5)
        if rng.random() < 0.15:
            properties["joined"] = f"2024-0{int(rng.integers(1, 10))}-12"
        graph.add_node(Node(f"n{index}", labels, properties))
    for index in range(edge_count):
        source = f"n{int(rng.integers(0, node_count))}"
        target = f"n{int(rng.integers(0, node_count))}"
        labels = EDGE_LABEL_SETS[int(rng.random() < 0.3)]
        properties = (
            {"since": 2000 + int(rng.integers(0, 25))}
            if rng.random() < 0.6
            else {}
        )
        graph.add_edge(Edge(f"e{index}", source, target, labels, properties))
    return graph


def _session() -> SchemaSession:
    config = PGHiveConfig(method=ClusteringMethod.MINHASH, seed=SEED)
    return SchemaSession(config, schema_name="ingest")


def ingest_feed(change_sets) -> tuple[tuple, float]:
    """Drive one change-set feed to a final schema; returns (fp, seconds)."""
    session = _session()
    start = time.perf_counter()
    for change_set in change_sets:
        session.apply(change_set)
    session.schema()
    seconds = time.perf_counter() - start
    return schema_fingerprint(session.schema()), seconds


def element_feed(records):
    return changesets_from_elements(
        (record_to_element(record) for record in records), BATCH_SIZE
    )


def columnar_feed(records):
    return columnar_changesets_from_rows(
        columnar_rows_from_records(records), BATCH_SIZE
    )


def best_of(make_feed, records) -> tuple[tuple, float]:
    fingerprint, best = None, float("inf")
    for _ in range(REPEATS):
        fingerprint, seconds = ingest_feed(make_feed(records))
        best = min(best, seconds)
    return fingerprint, best


def run(sizes) -> tuple[int, list[dict]]:
    results: list[dict] = []
    failed = False
    for element_count in sizes:
        graph = synthetic_graph(element_count, SEED)
        with tempfile.TemporaryDirectory() as scratch:
            path = Path(scratch) / "ingest.jsonl"
            write_graph_jsonl(graph, path)
            with path.open() as handle:
                records = [json.loads(line) for line in handle if line.strip()]
            element_fp, element_seconds = best_of(element_feed, records)
            columnar_fp, columnar_seconds = best_of(columnar_feed, records)
            disk_element_fp, disk_element_seconds = ingest_feed(
                iter_changesets_jsonl(path, batch_size=BATCH_SIZE)
            )
            disk_columnar_fp, disk_columnar_seconds = ingest_feed(
                iter_columnar_changesets_jsonl(path, batch_size=BATCH_SIZE)
            )
        identical = (
            element_fp == columnar_fp == disk_element_fp == disk_columnar_fp
        )
        speedup = element_seconds / columnar_seconds
        disk_speedup = disk_element_seconds / disk_columnar_seconds
        throughput = element_count / columnar_seconds
        results.append(
            {
                "elements": element_count,
                "element_seconds": round(element_seconds, 4),
                "columnar_seconds": round(columnar_seconds, 4),
                "element_eps": round(element_count / element_seconds),
                "columnar_eps": round(throughput),
                "speedup": round(speedup, 2),
                "disk_element_seconds": round(disk_element_seconds, 4),
                "disk_columnar_seconds": round(disk_columnar_seconds, 4),
                "disk_speedup": round(disk_speedup, 2),
                "fingerprint_identical": identical,
            }
        )
        print(
            f"[{element_count:>7}] element {element_seconds:6.2f}s "
            f"({element_count / element_seconds:8.0f} el/s)  "
            f"columnar {columnar_seconds:6.2f}s ({throughput:8.0f} el/s)  "
            f"speedup {speedup:4.2f}x  "
            f"(from disk incl. JSON decode: {disk_speedup:4.2f}x)  "
            f"fingerprint {'OK' if identical else 'MISMATCH'}"
        )
        if not identical:
            print("FAIL: columnar schema diverges from the element oracle")
            failed = True
        floor = MIN_SPEEDUP_BY_SCALE.get(element_count)
        if floor is None:
            print(
                f"FAIL: no speedup gate registered for {element_count} "
                "elements; add it to MIN_SPEEDUP_BY_SCALE"
            )
            failed = True
        elif speedup < floor:
            print(
                f"FAIL: columnar speedup {speedup:.2f}x at "
                f"{element_count} elements is below the {floor}x gate"
            )
            failed = True
        else:
            print(
                f"gate OK: {speedup:.2f}x >= {floor}x at "
                f"{element_count} elements"
            )
    return (1 if failed else 0), results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: smallest size only (all gates still enforced)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=Path("BENCH_ingest.json"),
        help="trajectory output path (default: BENCH_ingest.json)",
    )
    args = parser.parse_args()
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    exit_code, results = run(sizes)
    payload = {
        "quick": args.quick,
        "batch_size": BATCH_SIZE,
        "min_speedup_by_scale": {
            str(size): MIN_SPEEDUP_BY_SCALE[size] for size in sizes
        },
        "results": results,
    }
    merge_json(args.json, "ingest_columnar", payload)
    print(f"wrote {args.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())

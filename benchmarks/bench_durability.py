"""Durability overhead: WAL fsync policies vs a no-WAL baseline.

Drives the same synthetic change feed through a plain
:class:`SchemaSession` (no WAL) and through
:class:`DurableSchemaSession` under each fsync policy, then runs a
crash-recovery drill: crash mid-feed, recover from disk, finish the
feed, and gate on fingerprint equality with the uncrashed run.

Acceptance gate (full mode): with ``fsync=off`` the WAL costs at most
10% insert throughput vs the no-WAL baseline.  ``--quick`` (CI) still
runs every policy and the recovery drill but skips the overhead gate --
shared runners are too noisy for a throughput bound.

Run:        PYTHONPATH=src python benchmarks/bench_durability.py
Quick (CI): PYTHONPATH=src python benchmarks/bench_durability.py --quick
JSON:       ... --json BENCH_durability.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_incremental_stream import synthetic_stream

from repro.core.config import PGHiveConfig
from repro.core.recovery import DurableSchemaSession
from repro.core.session import SchemaSession
from repro.graph.changes import ChangeSet
from repro.schema.model import schema_fingerprint

SEED = 2026
FULL_BATCHES, FULL_NODES = 40, 300
QUICK_BATCHES, QUICK_NODES = 8, 100
#: Full-mode gate: fsync=off WAL overhead vs no-WAL baseline.
MAX_OFF_OVERHEAD = 0.10
REPEATS = 3


def feed_elements(batches):
    return [ChangeSet.from_graph(batch) for batch in batches]


def run_baseline(feed, config) -> tuple[tuple, dict]:
    best = None
    fingerprint = None
    for _ in range(REPEATS):
        session = SchemaSession(config, schema_name="bench-durability")
        start = time.perf_counter()
        for change_set in feed:
            session.apply(change_set)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
        fingerprint = schema_fingerprint(session.schema())
    elements = sum(cs.insert_count for cs in feed)
    return fingerprint, {
        "seconds": best,
        "inserts_per_second": elements / max(best, 1e-12),
    }


def run_durable(feed, config, fsync) -> tuple[tuple, dict]:
    best = None
    fingerprint = None
    wal_bytes = 0
    for _ in range(REPEATS):
        root = Path(tempfile.mkdtemp(prefix=f"bench-wal-{fsync}-"))
        try:
            session = DurableSchemaSession(
                root / "sess",
                config,
                schema_name="bench-durability",
                fsync=fsync,
            )
            start = time.perf_counter()
            for change_set in feed:
                session.apply(change_set)
            elapsed = time.perf_counter() - start
            session.close()
            wal_bytes = sum(
                path.stat().st_size for path in session.wal.segment_paths()
            )
            best = elapsed if best is None else min(best, elapsed)
            fingerprint = schema_fingerprint(session.schema())
        finally:
            shutil.rmtree(root, ignore_errors=True)
    elements = sum(cs.insert_count for cs in feed)
    return fingerprint, {
        "seconds": best,
        "inserts_per_second": elements / max(best, 1e-12),
        "wal_bytes": wal_bytes,
    }


def recovery_drill(feed, config, baseline_fingerprint) -> tuple[bool, dict]:
    """Crash mid-feed, recover, finish; gate on fingerprint equality."""
    crash_at = len(feed) // 2
    root = Path(tempfile.mkdtemp(prefix="bench-recovery-"))
    try:
        directory = root / "sess"
        session = DurableSchemaSession(
            directory, config, schema_name="bench-durability", fsync="batch"
        )
        for change_set in feed[: crash_at // 2]:
            session.apply(change_set)
        session.checkpoint()
        for change_set in feed[crash_at // 2 : crash_at]:
            session.apply(change_set)
        del session  # crash: no close, no final checkpoint

        start = time.perf_counter()
        recovered = DurableSchemaSession.recover(
            directory, config=config, schema_name="bench-durability"
        )
        recover_seconds = time.perf_counter() - start
        replayed = recovered.sequence - crash_at // 2
        for change_set in feed[recovered.sequence :]:
            recovered.apply(change_set)
        identical = (
            schema_fingerprint(recovered.schema()) == baseline_fingerprint
        )
        recovered.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return identical, {
        "crash_at": crash_at,
        "records_replayed": replayed,
        "recover_ms": recover_seconds * 1000,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI scale")
    parser.add_argument("--batches", type=int, default=None)
    parser.add_argument("--nodes-per-batch", type=int, default=None)
    parser.add_argument("--json", type=Path, default=None, metavar="PATH")
    args = parser.parse_args(argv)

    batch_count = args.batches or (QUICK_BATCHES if args.quick else FULL_BATCHES)
    nodes = args.nodes_per_batch or (QUICK_NODES if args.quick else FULL_NODES)
    feed = feed_elements(synthetic_stream(batch_count, nodes, SEED))
    total = sum(cs.insert_count for cs in feed)
    print(
        f"durability bench: {batch_count} change-sets, ~{nodes} nodes each, "
        f"{total:,} elements total"
    )

    config = PGHiveConfig(seed=SEED, infer_keys=True)
    baseline_fingerprint, baseline = run_baseline(feed, config)
    print(
        f"  no-WAL baseline   {baseline['inserts_per_second']:10,.0f} "
        f"elements/sec"
    )

    policies = {}
    fingerprints_match = True
    for fsync in ("off", "batch", "always"):
        fingerprint, result = run_durable(feed, config, fsync)
        overhead = (
            result["seconds"] / max(baseline["seconds"], 1e-12)
        ) - 1.0
        result["overhead_vs_baseline"] = overhead
        policies[fsync] = result
        fingerprints_match &= fingerprint == baseline_fingerprint
        print(
            f"  fsync={fsync:<6}      {result['inserts_per_second']:10,.0f} "
            f"elements/sec  ({overhead:+7.1%} vs baseline, "
            f"WAL {result['wal_bytes'] / 1e6:.2f}MB)"
        )

    recovered_identical, drill = recovery_drill(
        feed, config, baseline_fingerprint
    )
    print(
        f"  recovery drill    crash@{drill['crash_at']}, "
        f"{drill['records_replayed']} records replayed in "
        f"{drill['recover_ms']:.1f}ms, fingerprint identical: "
        f"{recovered_identical}"
    )

    off_overhead = policies["off"]["overhead_vs_baseline"]
    gate_checked = not args.quick
    gate_ok = off_overhead <= MAX_OFF_OVERHEAD

    payload = {
        "batches": batch_count,
        "nodes_per_batch": nodes,
        "total_elements": total,
        "seed": SEED,
        "baseline": baseline,
        "policies": policies,
        "recovery": drill,
        "recovery_identical": recovered_identical,
        "fingerprints_match": fingerprints_match,
        "max_off_overhead": MAX_OFF_OVERHEAD,
        "off_overhead_gate": {"checked": gate_checked, "ok": gate_ok},
    }
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2))
        print(f"  wrote {args.json}")

    if not (recovered_identical and fingerprints_match):
        print("FAIL: a durable run diverged from the no-WAL baseline")
        return 1
    if gate_checked and not gate_ok:
        print(
            f"FAIL: fsync=off overhead {off_overhead:.1%} exceeds the "
            f"{MAX_OFF_OVERHEAD:.0%} budget"
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 4: F1* across noise levels (0-40 %) and label availability.

One series per (dataset, availability, method): F1 at each noise level,
for node types and edge types.  Baselines appear only at 100 % label
availability -- exactly the paper's empty 50 %/0 % baseline rows.
"""

from __future__ import annotations

from bench_common import SEED, emit

from repro.bench.experiments import figure4_series
from repro.bench.harness import NOISE_LEVELS, PGHiveMethod
from repro.core.config import ClusteringMethod
from repro.bench.harness import format_table


def _print_series(capsys, grid, kind: str) -> None:
    headers = ["Dataset", "Labels %", "Method"] + [
        f"{int(noise * 100)}%" for noise in NOISE_LEVELS
    ]
    rows = [
        [dataset, f"{availability * 100:.0f}", method, *values]
        for dataset, availability, method, values in figure4_series(grid, kind)
    ]
    emit(
        capsys,
        format_table(headers, rows, title=f"Figure 4 ({kind}): F1* vs noise"),
    )


def test_figure4_quality_under_noise(benchmark, quality_grid, bench_datasets, capsys):
    # Benchmark one representative discovery (ELSH on the smallest dataset).
    smallest = min(bench_datasets, key=lambda d: d.graph.node_count)
    method = PGHiveMethod(ClusteringMethod.ELSH, seed=SEED)
    benchmark(lambda: method.run(smallest.graph))

    _print_series(capsys, quality_grid, "nodes")
    _print_series(capsys, quality_grid, "edges")

    # Shape assertions mirroring section 5.1.
    for dataset in {case.dataset for case in quality_grid.cases}:
        # PG-HIVE keeps producing results with no labels at all.
        no_label_cases = quality_grid.select(
            dataset=dataset, availability=0.0, method="PG-HIVE-ELSH"
        )
        assert all(case.supported for case in no_label_cases)
        # Baselines cannot run without full labels.
        for baseline in ("GMM", "SchemI"):
            for case in quality_grid.select(
                dataset=dataset, availability=0.0, method=baseline
            ):
                assert not case.supported

    # PG-HIVE dominates the baselines at the highest noise level (100% labels).
    wins, comparisons = 0, 0
    for case in quality_grid.select(noise=0.4, availability=1.0):
        if not case.method.startswith("PG-HIVE") or case.node_f1 is None:
            continue
        for baseline in quality_grid.select(
            dataset=case.dataset, noise=0.4, availability=1.0
        ):
            if baseline.method.startswith("PG-HIVE") or baseline.node_f1 is None:
                continue
            comparisons += 1
            if case.node_f1 >= baseline.node_f1 - 1e-9:
                wins += 1
    assert comparisons > 0
    assert wins / comparisons >= 0.9, f"PG-HIVE won only {wins}/{comparisons}"

    # PG-HIVE node F1 stays high under maximum noise with full labels.
    for case in quality_grid.select(noise=0.4, availability=1.0):
        if case.method.startswith("PG-HIVE") and case.node_f1 is not None:
            assert case.node_f1 >= 0.85, (case.dataset, case.method, case.node_f1)

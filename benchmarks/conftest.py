"""Shared fixtures for the benchmark suite.

The section 5 quality/efficiency grid (8 datasets x 5 noise levels x 3
label availabilities x 4 methods) is expensive, so it is computed once per
session and shared by the Figure 3 / 4 / 5 / headline benches.  Dataset
sizes scale with the ``PGHIVE_SCALE`` environment variable.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from bench_common import DEFAULT_GRID_SCALE, SEED  # noqa: E402

from repro.bench.experiments import (  # noqa: E402
    QualityGrid,
    load_bench_datasets,
    run_quality_grid,
)
from repro.bench.harness import bench_scale  # noqa: E402


@pytest.fixture(scope="session")
def bench_datasets():
    """The eight Table 2 datasets at bench scale."""
    return load_bench_datasets(scale=bench_scale(DEFAULT_GRID_SCALE), seed=SEED)


@pytest.fixture(scope="session")
def quality_grid(bench_datasets) -> QualityGrid:
    """The full section 5 grid, shared across benches."""
    return run_quality_grid(bench_datasets, seed=SEED)

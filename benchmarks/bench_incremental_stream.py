"""Per-batch post-processing cost: streaming accumulators vs union re-scan.

Drives N insert batches through :class:`IncrementalSchemaDiscovery` with
``post_process_each_batch=True`` in two modes:

* ``streaming`` -- the default engine: no union graph, post-processing
  reads the per-type accumulators (O(|schema|) per batch);
* ``union-rescan`` -- the pre-accumulator oracle (``retain_union=True,
  streaming_postprocess=False``): every batch re-scans the cumulative
  union graph, so per-batch post-processing cost grows with batch index.

Reports per-batch latency, per-batch post-processing time, peak traced
heap per mode (tracemalloc) plus process ``ru_maxrss``, and emits the
whole trajectory as JSON.  At full scale the run fails (exit 1) unless
the streaming mode achieves >= 5x cumulative post-processing speedup and
its per-batch cost stays flat; quick mode (CI) only reports.

Run:        PYTHONPATH=src python benchmarks/bench_incremental_stream.py
Quick (CI): PYTHONPATH=src python benchmarks/bench_incremental_stream.py --quick
JSON:       ... --json stream_bench.json
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.config import PGHiveConfig
from repro.core.incremental import IncrementalSchemaDiscovery
from repro.graph.model import Edge, Node, PropertyGraph

SEED = 2026
#: Acceptance scale (ISSUE 2): >= 5x cumulative speedup at 50 batches.
FULL_BATCHES, FULL_NODES = 50, 300
QUICK_BATCHES, QUICK_NODES = 12, 120
MIN_SPEEDUP = 5.0
#: Streaming per-batch post-processing must not trend upward: the mean of
#: the last quarter may exceed the first quarter's by at most this factor
#: (the schema itself stops growing after the first few batches).
MAX_FLATNESS_RATIO = 2.0


def synthetic_stream(
    batch_count: int, nodes_per_batch: int, seed: int
) -> list[PropertyGraph]:
    """Insert batches over a fixed set of labelled types.

    Every batch replays the same small set of "hub" nodes (identical
    content each time, as real endpoint stubs are), so the engine's
    replay dedup and the growing N:1 cardinalities are both exercised.
    """
    rng = np.random.default_rng(seed)
    hubs = [
        Node(f"hub{i}", {"Warehouse"}, {"wid": f"w-{i}", "region": f"r{i % 3}"})
        for i in range(4)
    ]
    batches: list[PropertyGraph] = []
    serial = 0
    for index in range(batch_count):
        batch = PropertyGraph(f"stream-batch{index + 1}")
        for hub in hubs:
            batch.add_node(hub)
        people: list[str] = []
        products: list[str] = []
        for _ in range(nodes_per_batch):
            serial += 1
            roll = rng.random()
            if roll < 0.5:
                node_id = f"p{serial}"
                properties = {
                    "uid": f"u-{serial}",
                    "name": f"name{int(rng.integers(0, 5000))}",
                    "age": int(rng.integers(18, 90)),
                }
                if rng.random() < 0.6:
                    properties["city"] = f"c{int(rng.integers(0, 40))}"
                batch.add_node(Node(node_id, {"Person"}, properties))
                people.append(node_id)
            else:
                node_id = f"g{serial}"
                properties = {
                    "sku": f"sku-{serial}",
                    "price": float(np.round(rng.uniform(1, 500), 2)) + 0.5,
                    "stock": int(rng.integers(0, 1000)),
                }
                batch.add_node(Node(node_id, {"Product"}, properties))
                products.append(node_id)
        edge_count = nodes_per_batch  # ~1 edge per node
        for _ in range(edge_count):
            serial += 1
            if people and products and rng.random() < 0.7:
                source = people[int(rng.integers(0, len(people)))]
                target = products[int(rng.integers(0, len(products)))]
                batch.add_edge(
                    Edge(
                        f"b{serial}",
                        source,
                        target,
                        {"BOUGHT"},
                        {"qty": int(rng.integers(1, 9))},
                    )
                )
            elif products:
                source = products[int(rng.integers(0, len(products)))]
                target = hubs[int(rng.integers(0, len(hubs)))].node_id
                batch.add_edge(
                    Edge(
                        f"s{serial}",
                        source,
                        target,
                        {"STORED_IN"},
                        {"since": "2024-03-09"},
                    )
                )
        batches.append(batch)
    return batches


def run_mode(mode: str, batches: list[PropertyGraph], seed: int) -> dict:
    """One full stream through the engine; returns the perf trajectory."""
    overrides = (
        {}
        if mode == "streaming"
        else {"retain_union": True, "streaming_postprocess": False}
    )
    config = PGHiveConfig(
        seed=seed,
        infer_keys=True,
        post_process_each_batch=True,
        **overrides,
    )
    engine = IncrementalSchemaDiscovery(config, schema_name=f"bench-{mode}")
    per_batch: list[float] = []
    postprocess: list[float] = []
    tracemalloc.start()
    for batch in batches:
        before = engine._timer.lap("postprocess")
        start = time.perf_counter()
        engine.add_batch(batch)
        per_batch.append(time.perf_counter() - start)
        postprocess.append(engine._timer.lap("postprocess") - before)
    engine.finalize()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "mode": mode,
        "per_batch_seconds": per_batch,
        "postprocess_seconds": postprocess,
        "postprocess_total_seconds": sum(postprocess),
        "peak_traced_bytes": int(peak),
        "node_types": engine.schema.node_type_count,
        "edge_types": engine.schema.edge_type_count,
    }


def flatness_ratio(samples: list[float]) -> float:
    """Median of the last quarter over the median of the first quarter.

    Medians, not means: per-batch streaming cost sits in the
    sub-millisecond range where a single GC pause would dominate a mean.
    """
    quarter = max(1, len(samples) // 4)
    head = float(np.median(samples[:quarter]))
    tail = float(np.median(samples[-quarter:]))
    return tail / head if head > 0 else float("inf")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI scale, no gating")
    parser.add_argument("--batches", type=int, default=None)
    parser.add_argument("--nodes-per-batch", type=int, default=None)
    parser.add_argument("--json", type=Path, default=None, metavar="PATH")
    args = parser.parse_args(argv)

    batch_count = args.batches or (QUICK_BATCHES if args.quick else FULL_BATCHES)
    nodes = args.nodes_per_batch or (QUICK_NODES if args.quick else FULL_NODES)
    batches = synthetic_stream(batch_count, nodes, SEED)
    total_elements = sum(len(b) for b in batches)
    print(
        f"incremental stream bench: {batch_count} batches, "
        f"~{nodes} nodes/batch, {total_elements:,} elements total"
    )

    results = {
        mode: run_mode(mode, batches, SEED) for mode in ("streaming", "union-rescan")
    }
    streaming, rescan = results["streaming"], results["union-rescan"]
    speedup = (
        rescan["postprocess_total_seconds"]
        / max(streaming["postprocess_total_seconds"], 1e-12)
    )
    flatness = flatness_ratio(streaming["postprocess_seconds"])
    rescan_flatness = flatness_ratio(rescan["postprocess_seconds"])

    for record in results.values():
        pp = record["postprocess_seconds"]
        print(
            f"  {record['mode']:<13} post-process total {record['postprocess_total_seconds']:8.3f}s   "
            f"first {pp[0] * 1000:7.2f}ms  last {pp[-1] * 1000:7.2f}ms   "
            f"peak heap {record['peak_traced_bytes'] / 1e6:7.1f}MB"
        )
    print(
        f"  cumulative post-processing speedup: {speedup:5.1f}x   "
        f"flatness (last/first quarter): streaming {flatness:.2f}, "
        f"union-rescan {rescan_flatness:.2f}"
    )
    print(f"  ru_maxrss: {resource.getrusage(resource.RUSAGE_SELF).ru_maxrss} kB")

    payload = {
        "batches": batch_count,
        "nodes_per_batch": nodes,
        "total_elements": total_elements,
        "seed": SEED,
        "modes": results,
        "speedup": speedup,
        "streaming_flatness": flatness,
        "union_rescan_flatness": rescan_flatness,
    }
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2))
        print(f"  wrote {args.json}")

    if not args.quick:
        failures = []
        if speedup < MIN_SPEEDUP:
            failures.append(f"speedup {speedup:.1f}x < {MIN_SPEEDUP}x")
        if flatness > MAX_FLATNESS_RATIO:
            failures.append(
                f"streaming per-batch post-processing grew {flatness:.2f}x "
                f"(limit {MAX_FLATNESS_RATIO}x)"
            )
        if failures:
            print("FAIL: " + "; ".join(failures))
            return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

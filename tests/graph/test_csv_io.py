"""Unit tests for CSV import/export."""

import pytest

from repro.errors import SerializationError
from repro.graph.csv_io import read_graph_csv, write_graph_csv
from repro.graph.model import Edge, Node, PropertyGraph


class TestRoundTrip:
    def test_figure1_roundtrip(self, figure1_graph, tmp_path):
        write_graph_csv(figure1_graph, tmp_path)
        loaded = read_graph_csv(tmp_path)
        assert loaded.node_count == figure1_graph.node_count
        assert loaded.edge_count == figure1_graph.edge_count
        for node in figure1_graph.nodes():
            assert loaded.node(node.node_id).labels == node.labels
            assert loaded.node(node.node_id).property_keys == node.property_keys

    def test_scalar_types_reinferred(self, tmp_path):
        graph = PropertyGraph()
        graph.add_node(
            Node(
                "a",
                {"T"},
                {"i": 42, "f": 2.5, "t": True, "s": "hello", "neg": -3},
            )
        )
        write_graph_csv(graph, tmp_path)
        loaded = read_graph_csv(tmp_path)
        properties = loaded.node("a").properties
        assert properties["i"] == 42 and isinstance(properties["i"], int)
        assert properties["f"] == 2.5 and isinstance(properties["f"], float)
        assert properties["t"] is True
        assert properties["s"] == "hello"
        assert properties["neg"] == -3

    def test_missing_properties_stay_missing(self, tmp_path):
        graph = PropertyGraph()
        graph.add_node(Node("a", {"T"}, {"x": 1}))
        graph.add_node(Node("b", {"T"}, {"y": 2}))
        write_graph_csv(graph, tmp_path)
        loaded = read_graph_csv(tmp_path)
        assert loaded.node("a").property_keys == frozenset({"x"})
        assert loaded.node("b").property_keys == frozenset({"y"})

    def test_multilabel_roundtrip(self, tmp_path):
        graph = PropertyGraph()
        graph.add_node(Node("a", {"Person", "Student"}))
        graph.add_node(Node("b"))
        graph.add_edge(Edge("e", "a", "b", {"KNOWS", "LIKES"}, {"w": 1}))
        write_graph_csv(graph, tmp_path)
        loaded = read_graph_csv(tmp_path)
        assert loaded.node("a").labels == frozenset({"Person", "Student"})
        assert loaded.node("b").labels == frozenset()
        assert loaded.edge("e").labels == frozenset({"KNOWS", "LIKES"})


class TestErrors:
    def test_missing_files(self, tmp_path):
        with pytest.raises(SerializationError):
            read_graph_csv(tmp_path / "nothing")

    def test_bad_header(self, tmp_path):
        (tmp_path / "nodes.csv").write_text("wrong,header\n")
        (tmp_path / "edges.csv").write_text("id,source,target,labels\n")
        with pytest.raises(SerializationError):
            read_graph_csv(tmp_path)

"""Tests for the streaming change-set readers (`iter_changesets_*`)."""

import pytest

from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.core.session import SchemaSession
from repro.core.sharding import ShardedSchemaSession
from repro.errors import ConfigurationError, DanglingEdgeError
from repro.graph.changes import changesets_from_elements
from repro.graph.csv_io import iter_changesets_csv, write_graph_csv
from repro.graph.json_io import (
    iter_changesets_jsonl,
    write_graph_jsonl,
)
from repro.graph.model import Edge, Node, PropertyGraph
from repro.schema.model import schema_fingerprint

LABELS = ["Person", "Org", "Post"]


def sample_graph(node_count: int = 18, edge_count: int = 24) -> PropertyGraph:
    graph = PropertyGraph("sample")
    for serial in range(node_count):
        label = LABELS[serial % len(LABELS)]
        graph.add_node(
            Node(
                f"v{serial}",
                {label},
                {f"{label.lower()}_id": serial, "name": f"n{serial}"},
            )
        )
    for serial in range(edge_count):
        source = graph.node(f"v{(serial * 7) % node_count}")
        target = graph.node(f"v{(serial * 3 + 1) % node_count}")
        label = f"R_{sorted(source.labels)[0]}_{sorted(target.labels)[0]}"
        graph.add_edge(
            Edge(
                f"r{serial}",
                source.node_id,
                target.node_id,
                {label},
                {"w": serial % 4},
            )
        )
    return graph


def reassembled(change_sets) -> PropertyGraph:
    graph = PropertyGraph("reassembled")
    for change_set in change_sets:
        for node in change_set.nodes:
            graph.put_node(node)
        for edge in change_set.edges:
            if not graph.has_edge(edge.edge_id):
                graph.add_edge(edge)
    return graph


class TestChangesetsFromElements:
    def test_batches_respect_fresh_element_budget(self):
        graph = sample_graph()
        change_sets = list(
            changesets_from_elements(
                [*graph.nodes(), *graph.edges()], batch_size=7
            )
        )
        assert len(change_sets) >= 2
        total_fresh = sum(cs.fresh_insert_count for cs in change_sets)
        assert total_fresh == len(graph)
        # every change-set is endpoint-complete
        for change_set in change_sets:
            shipped = {node.node_id for node in change_set.nodes}
            for edge in change_set.edges:
                assert set(edge.endpoints()) <= shipped

    def test_stubs_are_marked_and_only_replays(self):
        graph = sample_graph()
        seen: set[str] = set()
        for change_set in changesets_from_elements(
            [*graph.nodes(), *graph.edges()], batch_size=5
        ):
            for node in change_set.nodes:
                if node.node_id in change_set.stub_node_ids:
                    assert node.node_id in seen  # stubs replay known nodes
                else:
                    assert node.node_id not in seen
                    seen.add(node.node_id)

    def test_round_trips_the_graph(self):
        graph = sample_graph()
        change_sets = changesets_from_elements(
            [*graph.nodes(), *graph.edges()], batch_size=6
        )
        rebuilt = reassembled(change_sets)
        assert sorted(rebuilt.node_ids()) == sorted(graph.node_ids())
        assert sorted(rebuilt.edge_ids()) == sorted(graph.edge_ids())

    def test_edges_before_endpoints_are_buffered(self):
        node_a = Node("a", {"Person"}, {"person_id": 1})
        node_b = Node("b", {"Person"}, {"person_id": 2})
        edge = Edge("e", "a", "b", {"R"})
        change_sets = list(
            changesets_from_elements([edge, node_a, node_b], batch_size=10)
        )
        rebuilt = reassembled(change_sets)
        assert rebuilt.has_edge("e")

    def test_unresolvable_endpoint_raises(self):
        edge = Edge("e", "a", "missing", {"R"})
        with pytest.raises(DanglingEdgeError):
            list(
                changesets_from_elements(
                    [Node("a", {"P"}), edge], batch_size=10
                )
            )

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            list(changesets_from_elements([], batch_size=0))


class TestIOReaders:
    def test_jsonl_feed_matches_whole_graph_discovery(self, tmp_path):
        graph = sample_graph()
        path = write_graph_jsonl(graph, tmp_path / "g.jsonl")
        config = PGHiveConfig(seed=4)
        session = SchemaSession(config)  # streaming, no union, no store
        for change_set in iter_changesets_jsonl(path, batch_size=50):
            session.apply(change_set)
        streamed = session.schema()
        reference = PGHive(config).discover(graph).schema
        # Same types with the same assignments; specs agree because the
        # streaming reads equal the full scan on insert-only data.
        assert schema_fingerprint(streamed) == schema_fingerprint(reference)

    def test_jsonl_feed_drives_sharded_session(self, tmp_path):
        graph = sample_graph()
        path = write_graph_jsonl(graph, tmp_path / "g.jsonl")
        config = PGHiveConfig(seed=4)
        single = SchemaSession(config)
        sharded = ShardedSchemaSession(config, n_shards=3)
        for change_set in iter_changesets_jsonl(path, batch_size=8):
            single.apply(change_set)
            sharded.apply(change_set)
        assert schema_fingerprint(sharded.schema()) == schema_fingerprint(
            single.schema()
        )

    def test_csv_reader_round_trips(self, tmp_path):
        graph = sample_graph()
        write_graph_csv(graph, tmp_path)
        rebuilt = reassembled(iter_changesets_csv(tmp_path, batch_size=5))
        assert sorted(rebuilt.node_ids()) == sorted(graph.node_ids())
        assert sorted(rebuilt.edge_ids()) == sorted(graph.edge_ids())
        for node in rebuilt.nodes():
            assert node.labels == graph.node(node.node_id).labels

    def test_csv_reader_missing_files(self, tmp_path):
        from repro.errors import SerializationError

        with pytest.raises(SerializationError):
            iter_changesets_csv(tmp_path / "nope")

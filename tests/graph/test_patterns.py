"""Unit tests for node/edge patterns (Def. 3.5, 3.6 and Example 2)."""

from repro.graph.patterns import (
    EdgePattern,
    NodePattern,
    edge_patterns,
    node_patterns,
    patterns_by_token,
)


class TestNodePatterns:
    def test_figure1_node_patterns_match_example2(self, figure1_graph):
        patterns = set(node_patterns(figure1_graph))
        expected = {
            NodePattern(
                frozenset({"Person"}), frozenset({"name", "gender", "bday"})
            ),
            NodePattern(frozenset(), frozenset({"name", "gender", "bday"})),
            NodePattern(frozenset({"Org."}), frozenset({"name", "url"})),
            NodePattern(frozenset({"Post"}), frozenset({"imgFile"})),
            NodePattern(frozenset({"Post"}), frozenset({"content"})),
            NodePattern(frozenset({"Place"}), frozenset({"name"})),
        }
        assert patterns == expected

    def test_pattern_counts(self, figure1_graph):
        counts = node_patterns(figure1_graph)
        person = NodePattern(
            frozenset({"Person"}), frozenset({"name", "gender", "bday"})
        )
        assert counts[person] == 2  # bob and john

    def test_is_labeled(self):
        assert NodePattern(frozenset({"A"}), frozenset()).is_labeled
        assert not NodePattern(frozenset(), frozenset({"k"})).is_labeled

    def test_str_is_readable(self):
        pattern = NodePattern(frozenset({"A"}), frozenset({"x", "y"}))
        assert str(pattern) == "({A}, {x, y})"


class TestEdgePatterns:
    def test_figure1_edge_patterns_match_example2(self, figure1_graph):
        patterns = set(edge_patterns(figure1_graph))
        # Example 2 lists 6 distinct edge patterns; "alice" is unlabeled so
        # the KNOWS(alice->john) pattern has an empty source label set.
        assert (
            EdgePattern(
                frozenset({"KNOWS"}),
                frozenset({"since"}),
                frozenset({"Person"}),
                frozenset({"Person"}),
            )
            in patterns
        )
        assert (
            EdgePattern(
                frozenset({"KNOWS"}),
                frozenset(),
                frozenset(),
                frozenset({"Person"}),
            )
            in patterns
        )
        assert len(patterns) == 7  # 6 of Example 2 + the unlabeled-source LIKES

    def test_endpoint_tokens(self, figure1_graph):
        counts = edge_patterns(figure1_graph)
        works_at = next(p for p in counts if "WORKS_AT" in p.labels)
        assert works_at.endpoint_tokens == ("Person", "Org.")


class TestGrouping:
    def test_patterns_by_token_groups_same_type(self, figure1_graph):
        grouped = patterns_by_token(node_patterns(figure1_graph))
        assert len(grouped["Post"]) == 2  # two structural variants
        assert len(grouped[""]) == 1  # the unlabeled pattern

"""Unit tests for graph statistics (Table 2 rows)."""

from repro.graph.model import Node, PropertyGraph
from repro.graph.statistics import (
    compute_statistics,
    label_coverage,
    property_fill_ratio,
)


class TestComputeStatistics:
    def test_figure1_row(self, figure1_graph):
        stats = compute_statistics(figure1_graph)
        assert stats.nodes == 7
        assert stats.edges == 7
        assert stats.node_labels == 4
        assert stats.edge_labels == 4
        assert stats.node_patterns == 6
        assert stats.edge_patterns == 7

    def test_type_counts_from_ground_truth(self, figure1_graph):
        stats = compute_statistics(
            figure1_graph, node_type_count=4, edge_type_count=4, real=True
        )
        assert stats.node_types == 4
        assert stats.edge_types == 4
        assert stats.as_row()[-1] == "R"

    def test_type_counts_fallback_to_tokens(self, figure1_graph):
        stats = compute_statistics(figure1_graph)
        # Tokens: Person, "", Org., Post, Place -> 5
        assert stats.node_types == 5


class TestSparsityMeasures:
    def test_fill_ratio_full(self):
        graph = PropertyGraph()
        graph.add_node(Node("a", properties={"x": 1, "y": 2}))
        graph.add_node(Node("b", properties={"x": 3, "y": 4}))
        assert property_fill_ratio(graph) == 1.0

    def test_fill_ratio_partial(self):
        graph = PropertyGraph()
        graph.add_node(Node("a", properties={"x": 1}))
        graph.add_node(Node("b", properties={"x": 3, "y": 4}))
        assert property_fill_ratio(graph) == 0.75

    def test_fill_ratio_empty_graph(self):
        assert property_fill_ratio(PropertyGraph()) == 0.0

    def test_label_coverage(self, figure1_graph):
        assert label_coverage(figure1_graph) == 6 / 7

    def test_label_coverage_empty(self):
        assert label_coverage(PropertyGraph()) == 0.0

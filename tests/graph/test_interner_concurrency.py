"""Interner thread-safety and pickling (PGL901 satellite).

The process-wide interner will be shared by concurrent sessions in the
multi-tenant service; mutations hold a reentrant lock with double-checked
lookup and the already-interned fast path stays lock-free.  The lock is
process-local: pickling (shard workers receive the interner inside
``DiscoveryState``) drops it and the receiving process recreates it.
"""

import pickle
import threading

from repro.graph.columnar import Interner


def test_concurrent_interning_assigns_consistent_ids():
    interner = Interner()
    tokens = [f"token-{serial % 50}" for serial in range(500)]
    results: list[dict[str, int]] = []
    barrier = threading.Barrier(8)

    def work():
        barrier.wait()
        local = {}
        for token in tokens:
            local[token] = interner.intern_string(token)
            interner.intern_labels({token})
            interner.intern_keys({token, "shared"})
        results.append(local)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Every thread observed the same token -> id mapping, every id
    # decodes back to its token, and re-interning grows nothing.
    first = results[0]
    assert all(result == first for result in results)
    for token, sid in first.items():
        assert interner.string(sid) == token
    count = interner.string_count
    for token in set(tokens):
        assert interner.intern_string(token) == first[token]
    assert interner.string_count == count


def test_concurrent_signature_interning_assigns_consistent_ids():
    """8 threads racing intern_element_signature agree on every id.

    Element signatures sit on the columnar freeze hot path, so the
    already-interned probe must stay lock-free while first-writer
    interning (which Merkle-hashes the content) stays double-checked.
    """
    interner = Interner()
    structures = []
    for serial in range(40):
        labelset_id = interner.intern_labels({f"L{serial % 5}"})
        keyset_id = interner.intern_keys({f"k{serial % 7}", "shared"})
        shape = "is" if serial % 2 else "s?"
        if serial % 3:
            structures.append((labelset_id, keyset_id, shape, -1, -1))
        else:
            src = interner.intern_string(f"L{serial % 5}")
            tgt = interner.intern_string(f"L{(serial + 1) % 5}")
            structures.append((labelset_id, keyset_id, shape, src, tgt))
    work_list = structures * 20
    results: list[dict[tuple, int]] = []
    barrier = threading.Barrier(8)

    def work():
        barrier.wait()
        local = {}
        for key in work_list:
            local[key] = interner.intern_element_signature(*key)
        results.append(local)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Every thread observed the same structure -> id mapping, every id
    # decodes back to its content, digests are unique per structure,
    # and re-interning grows nothing.
    first = results[0]
    assert all(result == first for result in results)
    assert len(set(first.values())) == len(set(structures))
    digests = set()
    for (labelset_id, keyset_id, shape, src, tgt), sid in first.items():
        signature = interner.element_signature(sid)
        assert (
            signature.labelset_id,
            signature.keyset_id,
            signature.shape,
            signature.src_sid,
            signature.tgt_sid,
        ) == (labelset_id, keyset_id, shape, src, tgt)
        digests.add(signature.digest)
    assert len(digests) == len(set(structures))
    count = interner.signature_count
    for key in structures:
        assert interner.intern_element_signature(*key) == first[key]
    assert interner.signature_count == count


def test_reentrant_interning_under_one_lock():
    interner = Interner()
    with interner._lock:
        # intern_labels/intern_keys intern component strings while the
        # lock is already held: RLock keeps this from deadlocking.
        lid = interner.intern_labels({"Person"})
        kid = interner.intern_keys({"name", "age"})
    assert interner.labelset(lid).labels == frozenset({"Person"})
    assert interner.keyset(kid).keys == ("age", "name")


def test_pickle_round_trip_recreates_lock():
    interner = Interner()
    sid = interner.intern_string("hello")
    lid = interner.intern_labels({"A", "B"})
    clone = pickle.loads(pickle.dumps(interner))
    assert clone.string(sid) == "hello"
    assert clone.labelset(lid).labels == frozenset({"A", "B"})
    assert clone._lock is not interner._lock
    # The recreated lock is live: mutation through it still works.
    assert clone.intern_string("world") == clone.intern_string("world")

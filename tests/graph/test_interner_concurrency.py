"""Interner thread-safety and pickling (PGL901 satellite).

The process-wide interner will be shared by concurrent sessions in the
multi-tenant service; mutations hold a reentrant lock with double-checked
lookup and the already-interned fast path stays lock-free.  The lock is
process-local: pickling (shard workers receive the interner inside
``DiscoveryState``) drops it and the receiving process recreates it.
"""

import pickle
import threading

from repro.graph.columnar import Interner


def test_concurrent_interning_assigns_consistent_ids():
    interner = Interner()
    tokens = [f"token-{serial % 50}" for serial in range(500)]
    results: list[dict[str, int]] = []
    barrier = threading.Barrier(8)

    def work():
        barrier.wait()
        local = {}
        for token in tokens:
            local[token] = interner.intern_string(token)
            interner.intern_labels({token})
            interner.intern_keys({token, "shared"})
        results.append(local)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Every thread observed the same token -> id mapping, every id
    # decodes back to its token, and re-interning grows nothing.
    first = results[0]
    assert all(result == first for result in results)
    for token, sid in first.items():
        assert interner.string(sid) == token
    count = interner.string_count
    for token in set(tokens):
        assert interner.intern_string(token) == first[token]
    assert interner.string_count == count


def test_reentrant_interning_under_one_lock():
    interner = Interner()
    with interner._lock:
        # intern_labels/intern_keys intern component strings while the
        # lock is already held: RLock keeps this from deadlocking.
        lid = interner.intern_labels({"Person"})
        kid = interner.intern_keys({"name", "age"})
    assert interner.labelset(lid).labels == frozenset({"Person"})
    assert interner.keyset(kid).keys == ("age", "name")


def test_pickle_round_trip_recreates_lock():
    interner = Interner()
    sid = interner.intern_string("hello")
    lid = interner.intern_labels({"A", "B"})
    clone = pickle.loads(pickle.dumps(interner))
    assert clone.string(sid) == "hello"
    assert clone.labelset(lid).labels == frozenset({"A", "B"})
    assert clone._lock is not interner._lock
    # The recreated lock is live: mutation through it still works.
    assert clone.intern_string("world") == clone.intern_string("world")

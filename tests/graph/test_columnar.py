"""Columnar ingestion units: readers, change-set grouping, partitioning."""

import pytest

from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.session import SchemaSession
from repro.core.sharding import ShardedSchemaSession
from repro.errors import DanglingEdgeError
from repro.graph.changes import ChangeSet, HashPartitioner
from repro.graph.columnar import (
    BatchBuilder,
    ElementBatch,
    columnar_changesets_from_rows,
    global_interner,
)
from repro.graph.csv_io import (
    iter_changesets_csv,
    iter_columnar_changesets_csv,
    write_graph_csv,
)
from repro.graph.json_io import (
    iter_changesets_jsonl,
    iter_columnar_changesets_jsonl,
    write_graph_jsonl,
)
from repro.graph.model import Edge, Node, PropertyGraph
from repro.schema.model import schema_fingerprint


def sample_graph() -> PropertyGraph:
    graph = PropertyGraph("sample")
    for index in range(30):
        labels = frozenset({"Person"}) if index % 2 else frozenset({"Org"})
        properties = {"name": f"n{index}"}
        if index % 3 == 0:
            properties["age"] = index
        if index % 5 == 0:
            properties["score"] = index * 0.5
        graph.add_node(Node(f"v{index}", labels, properties))
    for index in range(25):
        graph.add_edge(
            Edge(
                f"r{index}",
                f"v{index % 30}",
                f"v{(index * 7) % 30}",
                frozenset({"KNOWS"}),
                {"since": 2000 + index % 9},
            )
        )
    return graph


def changesets_equal_elements(columnar_sets, element_sets):
    """Materialise both feeds and compare content change-set by change-set."""
    assert len(columnar_sets) == len(element_sets)
    for columnar_set, element_set in zip(columnar_sets, element_sets):
        nodes, edges = columnar_set.columnar.to_elements()
        assert nodes == element_set.nodes
        assert edges == element_set.edges
        assert columnar_set.stub_node_ids == element_set.stub_node_ids


class TestColumnarReaders:
    def test_jsonl_reader_matches_element_reader(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "graph.jsonl"
        write_graph_jsonl(graph, path)
        changesets_equal_elements(
            list(iter_columnar_changesets_jsonl(path, batch_size=8)),
            list(iter_changesets_jsonl(path, batch_size=8)),
        )

    def test_csv_reader_matches_element_reader(self, tmp_path):
        graph = sample_graph()
        write_graph_csv(graph, tmp_path)
        changesets_equal_elements(
            list(iter_columnar_changesets_csv(tmp_path, batch_size=8)),
            list(iter_changesets_csv(tmp_path, batch_size=8)),
        )

    def test_csv_columnar_session_fingerprint(self, tmp_path):
        graph = sample_graph()
        write_graph_csv(graph, tmp_path)
        config = PGHiveConfig(method=ClusteringMethod.MINHASH)
        element = SchemaSession(config, schema_name="s")
        for change_set in iter_changesets_csv(tmp_path, batch_size=10):
            element.apply(change_set)
        columnar = SchemaSession(config, schema_name="s")
        for change_set in iter_columnar_changesets_csv(tmp_path, batch_size=10):
            columnar.apply(change_set)
        assert schema_fingerprint(element.schema()) == schema_fingerprint(
            columnar.schema()
        )

    def test_missing_csv_files_raise(self, tmp_path):
        from repro.errors import SerializationError

        with pytest.raises(SerializationError):
            iter_columnar_changesets_csv(tmp_path)


class TestColumnarGrouping:
    def make_rows(self, elements):
        interner = global_interner()
        for element in elements:
            labelset_id = interner.intern_labels(element.labels)
            keyset_id = interner.intern_keys(element.properties)
            keys = interner.keyset(keyset_id).keys
            values = tuple(element.properties[key] for key in keys)
            if isinstance(element, Node):
                yield "n", (element.node_id, labelset_id, keyset_id, values)
            else:
                yield "e", (
                    element.edge_id,
                    element.source_id,
                    element.target_id,
                    labelset_id,
                    keyset_id,
                    values,
                )

    def test_stub_marking_and_supersede(self):
        node_a = Node("a", frozenset({"P"}), {"x": 1})
        node_b = Node("b", frozenset({"P"}), {"x": 2})
        edge = Edge("e", "a", "b", frozenset({"R"}))
        sets = list(
            columnar_changesets_from_rows(
                self.make_rows([node_a, node_b, edge]), batch_size=2
            )
        )
        assert len(sets) == 2
        first_nodes, first_edges = sets[0].columnar.to_elements()
        assert first_nodes == [node_a, node_b] and not first_edges
        second_nodes, second_edges = sets[1].columnar.to_elements()
        assert second_edges == [edge]
        # Both endpoints were shipped as marked stubs.
        assert sets[1].stub_node_ids == {"a", "b"}
        assert second_nodes == [node_a, node_b]

    def test_out_of_order_edges_buffer(self):
        node_a = Node("a", frozenset({"P"}), {"x": 1})
        node_b = Node("b", frozenset({"P"}), {"x": 2})
        edge = Edge("e", "a", "b", frozenset({"R"}))
        sets = list(
            columnar_changesets_from_rows(
                self.make_rows([edge, node_a, node_b]), batch_size=10
            )
        )
        assert len(sets) == 1
        nodes, edges = sets[0].columnar.to_elements()
        assert edges == [edge]
        assert sets[0].stub_node_ids == frozenset()

    def test_dangling_edge_raises_at_end_of_stream(self):
        edge = Edge("e", "a", "missing", frozenset({"R"}))
        node_a = Node("a", frozenset({"P"}), {"x": 1})
        with pytest.raises(DanglingEdgeError):
            list(
                columnar_changesets_from_rows(
                    self.make_rows([node_a, edge]), batch_size=10
                )
            )


class TestColumnarPartitioning:
    def feed(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "graph.jsonl"
        write_graph_jsonl(graph, path)
        return path

    def test_partition_round_trip_single_shard(self, tmp_path):
        path = self.feed(tmp_path)
        partitioner = HashPartitioner(1)
        for change_set in iter_columnar_changesets_jsonl(path, batch_size=9):
            parts = partitioner.partition(change_set, {})
            assert list(parts) == [0]
            nodes, edges = parts[0].columnar.to_elements()
            expected_nodes, expected_edges = change_set.columnar.to_elements()
            assert nodes == expected_nodes
            assert edges == expected_edges
            assert parts[0].stub_node_ids == change_set.stub_node_ids

    def test_partition_ships_cross_shard_stubs(self, tmp_path):
        path = self.feed(tmp_path)
        partitioner = HashPartitioner(3)
        registry = {}
        for change_set in iter_columnar_changesets_jsonl(path, batch_size=9):
            batch = change_set.columnar
            for row, node_id in enumerate(batch.nodes.ids):
                registry.setdefault(node_id, batch.node_record(row))
            for shard, part in partitioner.partition(change_set, registry).items():
                nodes, edges = part.columnar.to_elements()
                present = {node.node_id for node in nodes}
                for edge in edges:
                    assert partitioner.shard_of(edge.edge_id) == shard
                    assert edge.source_id in present
                    assert edge.target_id in present
                for node in nodes:
                    if node.node_id not in part.stub_node_ids:
                        assert partitioner.shard_of(node.node_id) == shard

    def test_sharded_columnar_matches_sharded_element(self, tmp_path):
        path = self.feed(tmp_path)
        config = PGHiveConfig(method=ClusteringMethod.MINHASH)
        for n_shards in (2, 4):
            element = ShardedSchemaSession(
                config, schema_name="s", n_shards=n_shards
            )
            for change_set in iter_changesets_jsonl(path, batch_size=9):
                element.apply(change_set)
            columnar = ShardedSchemaSession(
                config, schema_name="s", n_shards=n_shards
            )
            for change_set in iter_columnar_changesets_jsonl(path, batch_size=9):
                columnar.apply(change_set)
            assert schema_fingerprint(element.schema()) == schema_fingerprint(
                columnar.schema()
            )

    def test_sharded_session_rejects_mixed_interners(self, tmp_path):
        from repro.errors import ConfigurationError
        from repro.graph.columnar import Interner

        config = PGHiveConfig(method=ClusteringMethod.MINHASH)
        session = ShardedSchemaSession(config, schema_name="s", n_shards=2)
        node = Node("a", frozenset({"P"}), {"x": 1})
        first = Interner()
        session.apply(
            ChangeSet.inserts_columnar(
                ElementBatch.from_elements([node], [], first)
            )
        )
        other = Node("b", frozenset({"Q"}), {"y": 2})
        with pytest.raises(ConfigurationError):
            session.apply(
                ChangeSet.inserts_columnar(
                    ElementBatch.from_elements([other], [], Interner())
                )
            )
        # Same interner keeps working.
        session.apply(
            ChangeSet.inserts_columnar(
                ElementBatch.from_elements([other], [], first)
            )
        )

    def test_sharded_columnar_checkpoint_round_trip(self, tmp_path):
        path = self.feed(tmp_path)
        config = PGHiveConfig(method=ClusteringMethod.MINHASH)
        session = ShardedSchemaSession(config, schema_name="s", n_shards=2)
        feed = list(iter_columnar_changesets_jsonl(path, batch_size=9))
        for change_set in feed[:2]:
            session.apply(change_set)
        session.checkpoint(tmp_path / "ckpt")
        restored = ShardedSchemaSession.restore(tmp_path / "ckpt")
        for change_set in feed[2:]:
            session.apply(change_set)
            restored.apply(change_set)
        assert schema_fingerprint(session.schema()) == schema_fingerprint(
            restored.schema()
        )


class TestBatchBuilder:
    def test_put_node_replaces_in_place(self):
        builder = BatchBuilder()
        interner = builder.interner
        labelset_id = interner.intern_labels({"P"})
        keyset_id = interner.intern_keys(["x"])
        builder.add_node("a", labelset_id, keyset_id, (1,))
        builder.add_node("b", labelset_id, keyset_id, (2,))
        builder.put_node("a", labelset_id, keyset_id, (9,))
        batch = builder.freeze()
        nodes, _ = batch.to_elements()
        assert [node.node_id for node in nodes] == ["a", "b"]
        assert nodes[0].properties == {"x": 9}

    def test_empty_batch(self):
        batch = BatchBuilder().freeze()
        assert len(batch) == 0
        assert batch.to_elements() == ([], [])
        assert isinstance(batch, ElementBatch)

"""Unit tests for graph batch splitting (section 4.6 / Figure 7 setup)."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.batching import reassemble, split_into_batches, stream_batches


class TestSplitIntoBatches:
    def test_batches_partition_nodes(self, figure1_graph):
        batches = split_into_batches(figure1_graph, 3, seed=1)
        primary_counts = sum(b.node_count for b in batches)
        # Stub endpoint copies may duplicate nodes across batches, but the
        # union must equal the original node set.
        union_ids = set()
        for batch in batches:
            union_ids.update(batch.node_ids())
        assert union_ids == set(figure1_graph.node_ids())
        assert primary_counts >= figure1_graph.node_count

    def test_every_edge_appears_exactly_once(self, figure1_graph):
        batches = split_into_batches(figure1_graph, 4, seed=2)
        seen = []
        for batch in batches:
            seen.extend(batch.edge_ids())
        assert sorted(seen) == sorted(figure1_graph.edge_ids())

    def test_batches_are_valid_graphs(self, figure1_graph):
        # Constructing each batch would raise DanglingEdgeError otherwise.
        for batch in split_into_batches(figure1_graph, 5, seed=3):
            for edge in batch.edges():
                assert batch.has_node(edge.source_id)
                assert batch.has_node(edge.target_id)

    def test_deterministic_under_seed(self, figure1_graph):
        first = split_into_batches(figure1_graph, 3, seed=42)
        second = split_into_batches(figure1_graph, 3, seed=42)
        for left, right in zip(first, second):
            assert list(left.node_ids()) == list(right.node_ids())
            assert list(left.edge_ids()) == list(right.edge_ids())

    def test_different_seeds_differ(self, figure1_graph):
        first = split_into_batches(figure1_graph, 3, seed=1)
        second = split_into_batches(figure1_graph, 3, seed=2)
        assert any(
            list(left.node_ids()) != list(right.node_ids())
            for left, right in zip(first, second)
        )

    def test_single_batch_is_whole_graph(self, figure1_graph):
        (batch,) = split_into_batches(figure1_graph, 1, seed=0)
        assert batch.node_count == figure1_graph.node_count
        assert batch.edge_count == figure1_graph.edge_count

    def test_invalid_count_rejected(self, figure1_graph):
        with pytest.raises(ConfigurationError):
            split_into_batches(figure1_graph, 0)


class TestReassemble:
    def test_roundtrip(self, figure1_graph):
        batches = split_into_batches(figure1_graph, 4, seed=9)
        merged = reassemble(batches)
        assert set(merged.node_ids()) == set(figure1_graph.node_ids())
        assert set(merged.edge_ids()) == set(figure1_graph.edge_ids())

    def test_stream_is_lazy_equivalent(self, figure1_graph):
        streamed = list(stream_batches(figure1_graph, 3, seed=5))
        direct = split_into_batches(figure1_graph, 3, seed=5)
        assert [b.node_count for b in streamed] == [b.node_count for b in direct]

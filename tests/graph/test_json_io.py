"""Unit tests for JSON-lines import/export."""

import pytest

from repro.errors import SerializationError
from repro.graph.json_io import (
    edge_to_record,
    graph_from_elements,
    node_to_record,
    read_graph_jsonl,
    record_to_element,
    write_graph_jsonl,
)
from repro.graph.model import Edge, Node


class TestRecords:
    def test_node_record_roundtrip(self):
        node = Node("a", {"X", "Y"}, {"k": 1, "s": "v"})
        back = record_to_element(node_to_record(node))
        assert back == node

    def test_edge_record_roundtrip(self):
        edge = Edge("e", "a", "b", {"R"}, {"w": 1.5})
        back = record_to_element(edge_to_record(edge))
        assert back == edge

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            record_to_element({"kind": "hyperedge"})


class TestFileRoundTrip:
    def test_figure1_roundtrip_preserves_values_exactly(
        self, figure1_graph, tmp_path
    ):
        path = write_graph_jsonl(figure1_graph, tmp_path / "graph.jsonl")
        loaded = read_graph_jsonl(path)
        for node in figure1_graph.nodes():
            assert loaded.node(node.node_id).properties == dict(node.properties)
        for edge in figure1_graph.edges():
            assert loaded.edge(edge.edge_id).properties == dict(edge.properties)

    def test_edges_before_nodes_are_buffered(self, tmp_path):
        path = tmp_path / "g.jsonl"
        import json

        records = [
            edge_to_record(Edge("e", "a", "b", {"R"})),
            node_to_record(Node("a")),
            node_to_record(Node("b")),
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        loaded = read_graph_jsonl(path)
        assert loaded.has_edge("e")

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.jsonl"
        import json

        path.write_text(json.dumps(node_to_record(Node("a"))) + "\n\n\n")
        assert read_graph_jsonl(path).node_count == 1

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "g.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SerializationError, match=":1:"):
            read_graph_jsonl(path)


class TestGraphFromElements:
    def test_builds_from_mixed_iterable(self):
        graph = graph_from_elements(
            [
                Edge("e", "a", "b", {"R"}),
                Node("a", {"T"}),
                Node("b"),
            ]
        )
        assert graph.node_count == 2
        assert graph.edge_count == 1

"""Unit tests for the declarative query layer."""

import pytest

from repro.graph.query import query_edges, query_nodes
from repro.graph.store import GraphStore


@pytest.fixture
def store(figure1_graph) -> GraphStore:
    return GraphStore(figure1_graph)


class TestNodeQuery:
    def test_label_match(self, store):
        assert {n.node_id for n in query_nodes(store).with_label("Person")} == {
            "bob",
            "john",
        }

    def test_unlabeled(self, store):
        assert [n.node_id for n in query_nodes(store).unlabeled()] == ["alice"]

    def test_has_property(self, store):
        assert {n.node_id for n in query_nodes(store).has_property("url")} == {"org"}

    def test_where_predicate(self, store):
        males = query_nodes(store).where("gender", lambda v: v == "male").all()
        assert {n.node_id for n in males} == {"bob", "john"}

    def test_where_equals(self, store):
        found = query_nodes(store).where_equals("name", "Greece").all()
        assert [n.node_id for n in found] == ["place"]

    def test_predicate_requires_key_presence(self, store):
        # Nodes lacking the key never match, even with a permissive predicate.
        found = query_nodes(store).where("url", lambda _v: True).all()
        assert {n.node_id for n in found} == {"org"}

    def test_combined_label_and_property(self, store):
        found = (
            query_nodes(store)
            .with_label("Person")
            .where("gender", lambda v: v == "male")
            .all()
        )
        assert {n.node_id for n in found} == {"bob", "john"}

    def test_limit(self, store):
        assert len(query_nodes(store).limit(3).all()) == 3

    def test_first_and_count(self, store):
        query = query_nodes(store).with_label("Post")
        assert query.first() is not None
        assert query.count() == 2

    def test_no_match_returns_empty(self, store):
        assert query_nodes(store).with_label("Ghost").all() == []
        assert query_nodes(store).with_label("Ghost").first() is None


class TestEdgeQuery:
    def test_label(self, store):
        assert query_edges(store).with_label("KNOWS").count() == 2

    def test_endpoint_labels(self, store):
        found = query_edges(store).with_label("LOCATED_IN").from_label("Org.").all()
        assert [e.edge_id for e in found] == ["e6"]

    def test_to_label(self, store):
        found = query_edges(store).to_label("Post").all()
        assert {e.edge_id for e in found} == {"e3", "e4"}

    def test_has_property(self, store):
        assert {e.edge_id for e in query_edges(store).has_property("from")} == {
            "e5",
            "e7",
        }

    def test_where(self, store):
        found = query_edges(store).where("since", lambda v: v > 2000).all()
        assert [e.edge_id for e in found] == ["e2"]

    def test_limit(self, store):
        assert query_edges(store).limit(2).count() == 2

"""WAL wire encoding of change-sets: round trips and version pinning.

The critical property for columnar payloads: interner ids are
process-local and must never survive serialisation, so a batch encoded
in one process decodes correctly against a *different* interner whose id
assignments disagree.
"""

import pytest

from repro.graph.changes import ChangeSet
from repro.graph.columnar import BatchBuilder, Interner, global_interner
from repro.graph.model import Edge, Node
from repro.errors import WALError


def element_change_set():
    nodes = [
        Node("alice", {"Person"}, {"name": "Alice", "age": 7}),
        Node("acme", {"Org", "Company"}, {"name": "Acme"}),
    ]
    edges = [Edge("e1", "alice", "acme", {"WORKS_AT"}, {"since": 2020})]
    return ChangeSet(
        nodes=nodes,
        edges=edges,
        delete_nodes=["ghost"],
        delete_edges=["old-edge"],
        stub_node_ids=frozenset({"acme"}),
    )


class TestElementWire:
    def test_round_trip(self):
        original = element_change_set()
        decoded = ChangeSet.from_wire(original.to_wire())
        assert [n.node_id for n in decoded.nodes] == ["alice", "acme"]
        assert decoded.nodes[0].labels == {"Person"}
        assert decoded.nodes[0].properties == {"name": "Alice", "age": 7}
        assert [e.edge_id for e in decoded.edges] == ["e1"]
        assert decoded.delete_nodes == ["ghost"]
        assert decoded.delete_edges == ["old-edge"]
        assert decoded.stub_node_ids == frozenset({"acme"})
        assert decoded.columnar is None

    def test_deletion_only(self):
        original = ChangeSet.deletions(nodes=["a"], edges=["b"])
        decoded = ChangeSet.from_wire(original.to_wire())
        assert decoded.delete_nodes == ["a"]
        assert decoded.delete_edges == ["b"]
        assert not decoded.has_inserts


class TestColumnarWire:
    def build(self, interner):
        builder = BatchBuilder(interner)
        person = interner.intern_labels(["Person"])
        org = interner.intern_labels(["Org"])
        keys = interner.intern_keys(["age", "name"])
        builder.add_node("alice", person, keys, ("Alice", 7))
        builder.add_node("acme", org, keys, ("Acme", 99))
        builder.add_edge(
            "e1",
            "alice",
            "acme",
            interner.intern_labels(["WORKS_AT"]),
            interner.intern_keys(["since"]),
            (2020,),
        )
        return ChangeSet(columnar=builder.freeze(), stub_node_ids=frozenset({"acme"}))

    def test_round_trip_across_disagreeing_interners(self):
        writer = Interner()
        # Skew the reader's id space so any leaked id would mis-resolve.
        reader = Interner()
        reader.intern_labels(["Decoy1"])
        reader.intern_labels(["Decoy2"])
        reader.intern_keys(["zz"])

        wire = self.build(writer).to_wire()
        decoded = ChangeSet.from_wire(wire, interner=reader)
        batch = decoded.columnar
        assert batch is not None and batch.interner is reader
        assert list(batch.nodes.ids) == ["alice", "acme"]
        labelset_id, keyset_id, values = batch.node_record(0)
        assert reader.labelset(labelset_id).labels == frozenset({"Person"})
        assert reader.keyset(keyset_id).keys == ("age", "name")
        assert tuple(values) == ("Alice", 7)
        src, tgt, labelset_id, keyset_id, values = batch.edge_record(0)
        assert (src, tgt) == ("alice", "acme")
        assert reader.labelset(labelset_id).labels == frozenset({"WORKS_AT"})
        assert tuple(values) == (2020,)
        assert decoded.stub_node_ids == frozenset({"acme"})

    def test_decodes_against_global_interner_by_default(self):
        wire = self.build(Interner()).to_wire()
        decoded = ChangeSet.from_wire(wire)
        assert decoded.columnar.interner is global_interner()


class TestWireErrors:
    def test_garbage_payload(self):
        with pytest.raises(WALError, match="undecodable"):
            ChangeSet.from_wire(b"\x00\x01 not a pickle")

    def test_wrong_version(self):
        import pickle

        wire = pickle.dumps({"version": 999})
        with pytest.raises(WALError, match="version"):
            ChangeSet.from_wire(wire)

    def test_non_dict_record(self):
        import pickle

        with pytest.raises(WALError, match="version"):
            ChangeSet.from_wire(pickle.dumps([1, 2, 3]))

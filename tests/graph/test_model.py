"""Unit tests for the property-graph data model (Def. 3.1)."""

import pytest

from repro.errors import (
    DanglingEdgeError,
    DuplicateElementError,
    MissingElementError,
)
from repro.graph.model import Edge, Node, PropertyGraph, label_token


class TestLabelToken:
    def test_sorted_concatenation(self):
        assert label_token({"Student", "Person"}) == "Person+Student"

    def test_empty_set_maps_to_empty_token(self):
        assert label_token(frozenset()) == ""

    def test_order_insensitive(self):
        assert label_token(["b", "a", "c"]) == label_token(["c", "a", "b"])

    def test_single_label(self):
        assert label_token({"Person"}) == "Person"


class TestNode:
    def test_labels_coerced_to_frozenset(self):
        node = Node("n1", {"Person"}, {"age": 3})
        assert isinstance(node.labels, frozenset)

    def test_property_keys(self):
        node = Node("n1", frozenset(), {"a": 1, "b": 2})
        assert node.property_keys == frozenset({"a", "b"})

    def test_token_of_multilabel_node(self):
        node = Node("n1", {"Student", "Person"})
        assert node.token == "Person+Student"

    def test_with_labels_returns_new_node(self):
        node = Node("n1", {"Person"}, {"a": 1})
        relabeled = node.with_labels(set())
        assert relabeled.labels == frozenset()
        assert node.labels == frozenset({"Person"})
        assert relabeled.properties == {"a": 1}

    def test_with_properties_returns_new_node(self):
        node = Node("n1", {"Person"}, {"a": 1})
        updated = node.with_properties({"b": 2})
        assert updated.property_keys == frozenset({"b"})
        assert node.property_keys == frozenset({"a"})

    def test_properties_copied_from_input(self):
        source = {"a": 1}
        node = Node("n1", frozenset(), source)
        source["b"] = 2
        assert "b" not in node.properties


class TestEdge:
    def test_endpoints(self):
        edge = Edge("e1", "a", "b", {"KNOWS"})
        assert edge.endpoints() == ("a", "b")

    def test_token(self):
        edge = Edge("e1", "a", "b", {"LIKES", "KNOWS"})
        assert edge.token == "KNOWS+LIKES"

    def test_with_labels(self):
        edge = Edge("e1", "a", "b", {"KNOWS"}, {"since": 2020})
        updated = edge.with_labels({"LIKES"})
        assert updated.labels == frozenset({"LIKES"})
        assert updated.properties == {"since": 2020}


class TestPropertyGraphMutation:
    def test_add_and_lookup_node(self):
        graph = PropertyGraph()
        graph.add_node(Node("n1", {"A"}))
        assert graph.node("n1").labels == frozenset({"A"})

    def test_duplicate_node_rejected(self):
        graph = PropertyGraph()
        graph.add_node(Node("n1"))
        with pytest.raises(DuplicateElementError):
            graph.add_node(Node("n1"))

    def test_edge_requires_endpoints(self):
        graph = PropertyGraph()
        graph.add_node(Node("a"))
        with pytest.raises(DanglingEdgeError):
            graph.add_edge(Edge("e1", "a", "missing"))

    def test_duplicate_edge_rejected(self):
        graph = PropertyGraph()
        graph.add_node(Node("a"))
        graph.add_node(Node("b"))
        graph.add_edge(Edge("e1", "a", "b"))
        with pytest.raises(DuplicateElementError):
            graph.add_edge(Edge("e1", "b", "a"))

    def test_missing_lookup_raises(self):
        graph = PropertyGraph()
        with pytest.raises(MissingElementError):
            graph.node("nope")
        with pytest.raises(MissingElementError):
            graph.edge("nope")

    def test_remove_node_removes_incident_edges(self):
        graph = PropertyGraph()
        for node_id in ("a", "b", "c"):
            graph.add_node(Node(node_id))
        graph.add_edge(Edge("e1", "a", "b"))
        graph.add_edge(Edge("e2", "c", "a"))
        graph.add_edge(Edge("e3", "b", "c"))
        graph.remove_node("a")
        assert not graph.has_edge("e1")
        assert not graph.has_edge("e2")
        assert graph.has_edge("e3")
        assert graph.node_count == 2

    def test_remove_edge_updates_degrees(self):
        graph = PropertyGraph()
        graph.add_node(Node("a"))
        graph.add_node(Node("b"))
        graph.add_edge(Edge("e1", "a", "b"))
        graph.remove_edge("e1")
        assert graph.out_degree("a") == 0
        assert graph.in_degree("b") == 0

    def test_put_node_replaces(self):
        graph = PropertyGraph()
        graph.add_node(Node("a", {"X"}))
        graph.put_node(Node("a", {"Y"}))
        assert graph.node("a").labels == frozenset({"Y"})
        assert graph.node_count == 1


class TestPropertyGraphAdjacency:
    @pytest.fixture
    def diamond(self) -> PropertyGraph:
        graph = PropertyGraph()
        for node_id in ("a", "b", "c", "d"):
            graph.add_node(Node(node_id))
        graph.add_edge(Edge("e1", "a", "b"))
        graph.add_edge(Edge("e2", "a", "c"))
        graph.add_edge(Edge("e3", "b", "d"))
        graph.add_edge(Edge("e4", "c", "d"))
        return graph

    def test_out_edges(self, diamond):
        assert {e.edge_id for e in diamond.out_edges("a")} == {"e1", "e2"}

    def test_in_edges(self, diamond):
        assert {e.edge_id for e in diamond.in_edges("d")} == {"e3", "e4"}

    def test_degrees(self, diamond):
        assert diamond.out_degree("a") == 2
        assert diamond.in_degree("a") == 0
        assert diamond.in_degree("d") == 2

    def test_neighbors_distinct_both_directions(self, diamond):
        assert set(diamond.neighbors("b")) == {"a", "d"}

    def test_multigraph_parallel_edges(self):
        graph = PropertyGraph()
        graph.add_node(Node("a"))
        graph.add_node(Node("b"))
        graph.add_edge(Edge("e1", "a", "b", {"KNOWS"}))
        graph.add_edge(Edge("e2", "a", "b", {"KNOWS"}))
        assert graph.out_degree("a") == 2


class TestDerivedGraphs:
    def test_copy_is_independent(self, figure1_graph):
        clone = figure1_graph.copy()
        clone.remove_node("bob")
        assert figure1_graph.has_node("bob")
        assert not clone.has_node("bob")

    def test_subgraph_induced(self, figure1_graph):
        sub = figure1_graph.subgraph({"bob", "john", "alice"})
        assert sub.node_count == 3
        assert {e.edge_id for e in sub.edges()} == {"e1", "e2"}

    def test_subgraph_with_dangling(self, figure1_graph):
        sub = figure1_graph.subgraph({"bob"}, include_dangling=True)
        assert sub.has_node("org")  # pulled in by WORKS_AT
        assert sub.has_edge("e5")

    def test_subgraph_unknown_node_raises(self, figure1_graph):
        with pytest.raises(MissingElementError):
            figure1_graph.subgraph({"ghost"})

    def test_merge_in_unions(self, figure1_graph):
        other = PropertyGraph()
        other.add_node(Node("new", {"Person"}))
        merged = figure1_graph.copy().merge_in(other)
        assert merged.has_node("new")
        assert merged.node_count == figure1_graph.node_count + 1


class TestAggregates:
    def test_all_node_property_keys_sorted(self, figure1_graph):
        keys = figure1_graph.all_node_property_keys()
        assert keys == sorted(keys)
        assert "bday" in keys and "imgFile" in keys

    def test_all_edge_property_keys(self, figure1_graph):
        assert figure1_graph.all_edge_property_keys() == ["from", "since"]

    def test_all_node_labels(self, figure1_graph):
        assert figure1_graph.all_node_labels() == [
            "Org.",
            "Person",
            "Place",
            "Post",
        ]

    def test_len_and_contains(self, figure1_graph):
        assert len(figure1_graph) == 7 + 7
        assert "bob" in figure1_graph
        assert "e1" in figure1_graph
        assert "nope" not in figure1_graph

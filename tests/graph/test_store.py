"""Unit tests for the indexed graph store."""

import pytest

from repro.graph.model import Edge, Node
from repro.graph.store import GraphStore


@pytest.fixture
def store(figure1_graph) -> GraphStore:
    return GraphStore(figure1_graph)


class TestLoading:
    def test_counts_match_source(self, figure1_graph, store):
        assert store.node_count == figure1_graph.node_count
        assert store.edge_count == figure1_graph.edge_count

    def test_scan_order_is_insertion_order(self, figure1_graph, store):
        assert [n.node_id for n in store.scan_nodes()] == list(
            figure1_graph.node_ids()
        )


class TestLabelIndex:
    def test_nodes_with_label(self, store):
        assert {n.node_id for n in store.nodes_with_label("Person")} == {
            "bob",
            "john",
        }

    def test_unlabeled_nodes(self, store):
        assert [n.node_id for n in store.unlabeled_nodes()] == ["alice"]

    def test_edges_with_label(self, store):
        assert {e.edge_id for e in store.edges_with_label("KNOWS")} == {"e1", "e2"}

    def test_label_lists_sorted(self, store):
        assert store.node_labels() == ["Org.", "Person", "Place", "Post"]
        assert "KNOWS" in store.edge_labels()

    def test_missing_label_is_empty(self, store):
        assert store.nodes_with_label("Ghost") == []


class TestPropertyIndex:
    def test_nodes_with_property(self, store):
        assert {n.node_id for n in store.nodes_with_property("name")} == {
            "bob",
            "alice",
            "john",
            "org",
            "place",
        }

    def test_edges_with_property(self, store):
        assert {e.edge_id for e in store.edges_with_property("from")} == {
            "e5",
            "e7",
        }

    def test_property_key_lists(self, store):
        assert "bday" in store.node_property_keys()
        assert store.edge_property_keys() == ["from", "since"]


class TestIndexMaintenance:
    def test_remove_node_updates_indexes(self, store):
        store.remove_node("bob")
        assert {n.node_id for n in store.nodes_with_label("Person")} == {"john"}
        assert not store.graph.has_edge("e2")  # KNOWS bob->john gone
        assert not store.graph.has_edge("e5")  # WORKS_AT gone

    def test_remove_edge_updates_indexes(self, store):
        store.remove_edge("e2")
        assert {e.edge_id for e in store.edges_with_label("KNOWS")} == {"e1"}
        assert {e.edge_id for e in store.edges_with_property("since")} == set()

    def test_update_node_reindexes(self, store):
        node = store.node("alice").with_labels({"Person"})
        store.update_node(node)
        assert {n.node_id for n in store.nodes_with_label("Person")} == {
            "bob",
            "john",
            "alice",
        }
        assert store.unlabeled_nodes() == []

    def test_update_edge_reindexes_labels(self, store):
        edge = store.edge("e2").with_labels({"FOLLOWS"})
        store.update_edge(edge)
        assert {e.edge_id for e in store.edges_with_label("KNOWS")} == {"e1"}
        assert {e.edge_id for e in store.edges_with_label("FOLLOWS")} == {"e2"}

    def test_update_edge_reindexes_property_keys(self, store):
        edge = store.edge("e2").with_properties({"weight": 0.5})
        store.update_edge(edge)
        assert {e.edge_id for e in store.edges_with_property("since")} == set()
        assert {e.edge_id for e in store.edges_with_property("weight")} == {"e2"}
        assert "weight" in store.edge_property_keys()
        assert "since" not in store.edge_property_keys()

    def test_update_edge_moves_endpoints(self, store):
        old = store.edge("e2")  # bob -> john
        store.update_edge(Edge("e2", "alice", "john", old.labels, old.properties))
        assert store.out_degree("bob") == 1  # only WORKS_AT left
        assert store.out_degree("alice") == 3  # e1 + e3 + moved e2
        assert store.in_degree("john") == 2  # still two KNOWS
        assert store.edge("e2").source_id == "alice"

    def test_update_edge_preserves_scan_order(self, store):
        order_before = [e.edge_id for e in store.scan_edges()]
        store.update_edge(store.edge("e2").with_properties({"since": 2026}))
        assert [e.edge_id for e in store.scan_edges()] == order_before
        assert store.edge("e2").properties["since"] == 2026

    def test_update_edge_unknown_id_raises(self, store):
        from repro.errors import MissingElementError

        with pytest.raises(MissingElementError):
            store.update_edge(Edge("ghost", "bob", "john", {"KNOWS"}))

    def test_add_after_load(self, store):
        store.add_node(Node("x", {"Person"}, {"name": "X"}))
        store.add_edge(Edge("ex", "x", "bob", {"KNOWS"}))
        assert store.node("x").properties["name"] == "X"
        assert "x" in {n.node_id for n in store.nodes_with_label("Person")}


class TestDegreeQueries:
    def test_degrees(self, store):
        assert store.in_degree("john") == 2  # KNOWS from alice and bob
        assert store.out_degree("bob") == 2  # KNOWS + WORKS_AT

    def test_endpoint_labels(self, store):
        edge = store.edge("e5")
        source_labels, target_labels = store.endpoint_labels(edge)
        assert source_labels == frozenset({"Person"})
        assert target_labels == frozenset({"Org."})

"""Unit tests for the majority-based F1* metric (section 5)."""

import pytest

from repro.eval.clustering_metrics import (
    cluster_purity,
    majority_f1,
    majority_prediction,
)


class TestMajorityPrediction:
    def test_majority_assigns_cluster_label(self):
        assignment = {"a": "c1", "b": "c1", "c": "c1"}
        truth = {"a": "X", "b": "X", "c": "Y"}
        prediction = majority_prediction(assignment, truth)
        assert prediction == {"a": "X", "b": "X", "c": "X"}

    def test_tie_breaks_to_smallest_name(self):
        assignment = {"a": "c1", "b": "c1"}
        truth = {"a": "B", "b": "A"}
        prediction = majority_prediction(assignment, truth)
        assert prediction["a"] == "A"

    def test_elements_missing_truth_skipped(self):
        assignment = {"a": "c1", "ghost": "c1"}
        truth = {"a": "X"}
        prediction = majority_prediction(assignment, truth)
        assert "ghost" not in prediction


class TestMajorityF1:
    def test_perfect_clustering(self):
        assignment = {"a": "c1", "b": "c1", "c": "c2"}
        truth = {"a": "X", "b": "X", "c": "Y"}
        result = majority_f1(assignment, truth)
        assert result.macro_f1 == 1.0
        assert result.micro_f1 == 1.0

    def test_fragmentation_is_not_penalised(self):
        # Majority-based scoring: pure singleton clusters are all correct.
        assignment = {"a": "c1", "b": "c2", "c": "c3"}
        truth = {"a": "X", "b": "X", "c": "Y"}
        assert majority_f1(assignment, truth).macro_f1 == 1.0

    def test_mixing_is_penalised(self):
        # One cluster swallows both types: minority type scores zero.
        assignment = {"a": "c1", "b": "c1", "c": "c1"}
        truth = {"a": "X", "b": "X", "c": "Y"}
        result = majority_f1(assignment, truth)
        per_type = {s.type_name: s for s in result.per_type}
        assert per_type["Y"].f1 == 0.0
        assert per_type["X"].recall == 1.0
        assert result.macro_f1 == pytest.approx((per_type["X"].f1 + 0.0) / 2)

    def test_micro_equals_accuracy(self):
        assignment = {"a": "c1", "b": "c1", "c": "c1", "d": "c2"}
        truth = {"a": "X", "b": "X", "c": "Y", "d": "Y"}
        result = majority_f1(assignment, truth)
        assert result.micro_f1 == pytest.approx(3 / 4)

    def test_empty_input(self):
        result = majority_f1({}, {})
        assert result.macro_f1 == 0.0
        assert result.evaluated == 0

    def test_per_type_support(self):
        assignment = {"a": "c1", "b": "c1", "c": "c2"}
        truth = {"a": "X", "b": "X", "c": "Y"}
        result = majority_f1(assignment, truth)
        supports = {s.type_name: s.support for s in result.per_type}
        assert supports == {"X": 2, "Y": 1}

    def test_cluster_count_reported(self):
        assignment = {"a": "c1", "b": "c2", "c": "c2"}
        result = majority_f1(assignment, {"a": "X", "b": "X", "c": "X"})
        assert result.cluster_count == 2

    def test_purity_shortcut(self):
        assignment = {"a": "c1", "b": "c1"}
        truth = {"a": "X", "b": "Y"}
        assert cluster_purity(assignment, truth) == 0.5

    def test_str(self):
        result = majority_f1({"a": "c"}, {"a": "X"})
        assert "F1*" in str(result)

"""Unit tests for the datatype sampling-error metric (Figure 8)."""

import pytest

from repro.eval.sampling_error import BIN_LABELS, bin_errors, sampling_error


class TestSamplingError:
    def test_homogeneous_property_scores_zero(self):
        values = list(range(100))
        assert sampling_error(values, values[:10]) == 0.0

    def test_heterogeneous_property_counts_disagreements(self):
        # Full scan sees a string outlier -> STRING; sampled ints disagree.
        full = [1, 2, 3, 4, "oops"]
        sample = [1, 2, 3, 4]
        assert sampling_error(full, sample) == 1.0

    def test_partial_disagreement(self):
        full = [1, 2, 3, "x"]
        sample = [1, 2, "x", "y"]
        # f(D_p) = STRING; 1, 2 disagree; "x", "y" agree.
        assert sampling_error(full, sample) == 0.5

    def test_empty_sample(self):
        assert sampling_error([1, 2], []) == 0.0

    def test_numeric_generalisation(self):
        full = [1, 2.5]
        sample = [1]
        # f(D_p) = FLOAT, f(1) = INTEGER -> disagreement.
        assert sampling_error(full, sample) == 1.0


class TestBinErrors:
    def test_bins_partition_range(self):
        errors = [0.0, 0.04, 0.05, 0.09, 0.1, 0.19, 0.2, 0.5, 1.0]
        bins = bin_errors(errors)
        assert bins["0-0.05"] == pytest.approx(2 / 9)
        assert bins["0.05-0.10"] == pytest.approx(2 / 9)
        assert bins["0.10-0.20"] == pytest.approx(2 / 9)
        assert bins[">=0.20"] == pytest.approx(3 / 9)

    def test_normalised(self):
        bins = bin_errors([0.0, 0.0, 0.3])
        assert sum(bins.values()) == pytest.approx(1.0)

    def test_empty(self):
        bins = bin_errors([])
        assert all(v == 0.0 for v in bins.values())
        assert set(bins) == set(BIN_LABELS)

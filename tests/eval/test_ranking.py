"""Unit tests for Friedman ranks and the Nemenyi test (Figure 3)."""

import pytest

from repro.errors import ConfigurationError
from repro.eval.ranking import (
    average_ranks,
    friedman_statistic,
    nemenyi_critical_difference,
    nemenyi_test,
    rank_rows,
)


class TestRankRows:
    def test_higher_score_gets_rank_one(self):
        scores = {"good": [0.9, 0.8], "bad": [0.1, 0.2]}
        ranks = rank_rows(scores)
        assert ranks.tolist() == [[1.0, 2.0], [1.0, 2.0]]

    def test_ties_get_average_rank(self):
        scores = {"a": [0.5], "b": [0.5], "c": [0.1]}
        ranks = rank_rows(scores)
        assert sorted(ranks[0].tolist()) == [1.5, 1.5, 3.0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_rows({"a": [1.0], "b": [1.0, 2.0]})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_rows({})


class TestAverageRanks:
    def test_dominant_method_ranks_first(self):
        scores = {
            "winner": [0.9, 0.95, 0.99],
            "middle": [0.5, 0.6, 0.7],
            "loser": [0.1, 0.2, 0.3],
        }
        ranks = average_ranks(scores)
        assert ranks["winner"] == 1.0
        assert ranks["loser"] == 3.0


class TestFriedman:
    def test_clear_differences_significant(self):
        scores = {
            "a": [0.9, 0.91, 0.92, 0.93, 0.94, 0.95],
            "b": [0.5, 0.51, 0.52, 0.53, 0.54, 0.55],
            "c": [0.1, 0.11, 0.12, 0.13, 0.14, 0.15],
        }
        statistic, p_value = friedman_statistic(scores)
        assert statistic > 0
        assert p_value < 0.05

    def test_needs_three_methods(self):
        with pytest.raises(ConfigurationError):
            friedman_statistic({"a": [1.0], "b": [2.0]})


class TestCriticalDifference:
    def test_known_value(self):
        # Demsar (2006): q_0.05 for k=4 is ~2.569; CD = 2.569*sqrt(4*5/(6*40)).
        cd = nemenyi_critical_difference(4, 40)
        assert cd == pytest.approx(2.569 * (20 / 240) ** 0.5, rel=0.01)

    def test_more_cases_tighter_cd(self):
        assert nemenyi_critical_difference(4, 100) < nemenyi_critical_difference(
            4, 10
        )

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            nemenyi_critical_difference(1, 10)
        with pytest.raises(ConfigurationError):
            nemenyi_critical_difference(3, 0)


class TestNemenyiTest:
    def test_significant_pair_detected(self):
        cases = 20
        scores = {
            "strong": [0.95 + 0.001 * i for i in range(cases)],
            "medium": [0.7 + 0.001 * i for i in range(cases)],
            "weak": [0.3 + 0.001 * i for i in range(cases)],
        }
        result = nemenyi_test(scores)
        assert result.is_significant("strong", "weak")
        assert result.ranks["strong"] < result.ranks["weak"]

    def test_indistinguishable_methods_not_significant(self):
        # Alternate winners: average ranks nearly equal.
        scores = {
            "a": [0.9, 0.1] * 10,
            "b": [0.1, 0.9] * 10,
            "c": [0.5, 0.5] * 10,
        }
        result = nemenyi_test(scores)
        assert not result.is_significant("a", "b")

    def test_ordered_output(self):
        scores = {"x": [0.2, 0.3], "y": [0.9, 0.8], "z": [0.5, 0.6]}
        result = nemenyi_test(scores)
        names = [name for name, _ in result.ordered()]
        assert names == ["y", "z", "x"]

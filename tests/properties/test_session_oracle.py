"""Property-based equivalence: session change feed vs maintenance oracle.

Interleaved insert/delete change-sets driven through a streaming
:class:`SchemaSession` (which builds accumulators and falls back to the
full re-scan only after the first deletion) must land on exactly the
schema that the :class:`MaintainedSchema` surface -- always union-backed,
always full-recompute -- produces for the same operation sequence.  The
session additionally resolves edge endpoints from its union graph instead
of requiring shipped stubs; the oracle receives classic stub-carrying
batches, so the test also pins that the two ingestion paths agree.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PGHiveConfig
from repro.core.maintenance import MaintainedSchema
from repro.core.session import SchemaSession
from repro.graph.changes import ChangeSet
from repro.graph.model import Edge, Node, PropertyGraph
from repro.schema.model import schema_fingerprint

LABELS = ["Person", "Org", "Post"]
KEYS = ["name", "age", "url", "rank"]


@st.composite
def operation_scripts(draw):
    """A short program of insert/delete operations over a shared universe.

    Inserts reference fresh element ids; deletions pick (by index) from
    the ids inserted so far, so every script is valid for both surfaces.
    """
    ops = []
    serial = 0
    op_count = draw(st.integers(2, 5))
    for _ in range(op_count):
        kind = draw(st.sampled_from(["insert", "del_nodes", "del_edges"]))
        if kind == "insert":
            nodes = []
            for _ in range(draw(st.integers(1, 3))):
                serial += 1
                label = draw(st.sampled_from(LABELS))
                keys = draw(
                    st.frozensets(st.sampled_from(KEYS), min_size=1, max_size=3)
                )
                nodes.append(
                    (f"v{serial}", label, {k: f"{k}-{serial}" for k in sorted(keys)})
                )
            edge_count = draw(st.integers(0, 2))
            edge_picks = [
                (draw(st.integers(0, 10_000)), draw(st.integers(0, 10_000)))
                for _ in range(edge_count)
            ]
            ops.append(("insert", nodes, edge_picks))
        else:
            picks = draw(st.lists(st.integers(0, 10_000), min_size=1, max_size=3))
            ops.append((kind, picks))
    return ops


def interpret(ops):
    """Resolve an abstract script into concrete per-op payloads."""
    node_ids: list[tuple[str, str, dict]] = []  # (id, label, props)
    edge_ids: list[str] = []
    live_nodes: dict[str, tuple[str, dict]] = {}
    serial = 0
    resolved = []
    for op in ops:
        if op[0] == "insert":
            _, nodes, edge_picks = op
            for node_id, label, props in nodes:
                live_nodes[node_id] = (label, props)
                node_ids.append((node_id, label, props))
            edges = []
            pool = list(live_nodes)
            for left, right in edge_picks:
                if len(pool) < 2:
                    break
                serial += 1
                source = pool[left % len(pool)]
                target = pool[right % len(pool)]
                edge_id = f"r{serial}"
                edges.append((edge_id, source, target))
                edge_ids.append(edge_id)
            resolved.append(("insert", nodes, edges))
        elif op[0] == "del_nodes":
            if not node_ids:
                continue
            targets = sorted({node_ids[i % len(node_ids)][0] for i in op[1]})
            for node_id in targets:
                live_nodes.pop(node_id, None)
            resolved.append(("del_nodes", targets))
        else:
            if not edge_ids:
                continue
            targets = sorted({edge_ids[i % len(edge_ids)] for i in op[1]})
            resolved.append(("del_edges", targets))
    return resolved


def drive_session(resolved, config):
    """Feed the script as change-sets (no endpoint stubs shipped)."""
    session = SchemaSession(config, retain_union=True)
    for op in resolved:
        if op[0] == "insert":
            _, nodes, edges = op
            node_objs = [
                Node(node_id, {label}, props) for node_id, label, props in nodes
            ]
            edge_objs = [
                Edge(edge_id, source, target, {"REL"})
                for edge_id, source, target in edges
            ]
            session.apply(ChangeSet.inserts(nodes=node_objs, edges=edge_objs))
        elif op[0] == "del_nodes":
            session.apply(ChangeSet.deletions(nodes=op[1]))
        else:
            session.apply(ChangeSet.deletions(edges=op[1]))
    return session.schema()


def drive_maintained(resolved, config):
    """Feed the script through the classic maintenance surface."""
    maintained = MaintainedSchema(config, infer_key_constraints=config.infer_keys)
    known: dict[str, Node] = {}
    for op in resolved:
        if op[0] == "insert":
            _, nodes, edges = op
            batch = PropertyGraph("batch")
            for node_id, label, props in nodes:
                node = Node(node_id, {label}, props)
                known[node_id] = node
                batch.put_node(node)
            for edge_id, source, target in edges:
                for endpoint in (source, target):
                    if not batch.has_node(endpoint):
                        batch.add_node(known[endpoint])  # classic stub
                batch.add_edge(Edge(edge_id, source, target, {"REL"}))
            maintained.insert_batch(batch)
        elif op[0] == "del_nodes":
            maintained.delete_nodes(op[1])
        else:
            maintained.delete_edges(op[1])
    return maintained.refresh()


class TestSessionMatchesMaintenanceOracle:
    @given(ops=operation_scripts())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_interleaved_feed_matches_full_recompute(self, ops):
        resolved = interpret(ops)
        config = PGHiveConfig(seed=3, infer_keys=True)
        session_schema = drive_session(resolved, config)
        oracle_schema = drive_maintained(resolved, config)
        assert schema_fingerprint(session_schema) == schema_fingerprint(
            oracle_schema
        )

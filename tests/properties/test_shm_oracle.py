"""Shared-memory handoff oracle: shm-parallel ≡ serial fingerprints.

The zero-copy handoff (:mod:`repro.core.shm`) replaces pickled shard
parts with name+layout descriptors over ``multiprocessing.shared_memory``.
That substitution must be *invisible*: for random interleaved
insert/delete columnar feeds, a parallel :class:`ShardedSchemaSession`
running the shm handoff lands on a schema fingerprint-identical to one
:class:`SchemaSession` consuming the same feed -- at every tested shard
count, through ``apply`` lockstep and through the pipelined
``ingest_stream``, across worker death (retry and degraded mode), and
across a checkpoint/restore mid-stream.  Every test also asserts the
block registry and ``/dev/shm`` are clean afterwards: a fingerprint
match that leaks segments is still a failure.

The compiled MinHash kernel rides along at the bottom: when numba is
installed the jitted kernel must be bit-identical to the numpy path
(it feeds the same fingerprints, so "close" is not good enough).
"""

import warnings
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.config import PGHiveConfig
from repro.core.faults import FaultInjector
from repro.core.session import SchemaSession
from repro.core.sharding import ShardedSchemaSession
from repro.core.shm import SHM_NAME_PREFIX, global_registry, shm_available
from repro.errors import ConfigurationError, DegradedModeWarning
from repro.graph.changes import ChangeSet
from repro.graph.columnar import BatchBuilder, global_interner
from repro.lsh.minhash import (
    MinHashLSH,
    active_minhash_kernel,
    configure_minhash_kernel,
    numba_available,
    scalar_signature,
)
from repro.schema.model import schema_fingerprint

from tests.properties.test_sharding_oracle import (
    interpret,
    operation_scripts,
    to_change_sets,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

SHARD_COUNTS = (1, 2, 4)
CONFIG = PGHiveConfig(seed=3, infer_keys=True, shard_handoff="shm")


def assert_no_leaked_blocks():
    """The coordinator registry owns nothing and /dev/shm has no blocks."""
    assert global_registry().live_blocks() == ()
    shm_dir = Path("/dev/shm")
    if shm_dir.is_dir():
        leaked = [p.name for p in shm_dir.glob(SHM_NAME_PREFIX + "*")]
        assert leaked == [], f"leaked shared-memory segments: {leaked}"


def columnarize(change_sets):
    """Re-express element-wise inserts as endpoint-complete columnar batches.

    Edges referencing nodes from earlier change-sets ship full stub
    copies (marked in ``stub_node_ids``), exactly as the streaming reader
    does -- only columnar parts travel through shared memory, so the
    oracle must feed columnar payloads to exercise the handoff at all.
    """
    interner = global_interner()
    directory = {}
    out = []
    for change_set in change_sets:
        if not (change_set.nodes or change_set.edges):
            out.append(change_set)
            continue
        builder = BatchBuilder(interner)
        fresh = set()
        for node in change_set.nodes:
            labelset_id = interner.intern_labels(node.labels)
            keyset_id = interner.intern_keys(node.properties)
            keys = interner.keyset(keyset_id).keys
            values = tuple(node.properties[key] for key in keys)
            builder.put_node(node.node_id, labelset_id, keyset_id, values)
            directory[node.node_id] = (labelset_id, keyset_id, values)
            fresh.add(node.node_id)
        stubs = set()
        for edge in change_set.edges:
            for endpoint in (edge.source_id, edge.target_id):
                if endpoint not in fresh and endpoint not in stubs:
                    builder.add_node(endpoint, *directory[endpoint])
                    stubs.add(endpoint)
            builder.add_edge_element(edge)
        out.append(
            ChangeSet(
                columnar=builder.freeze(), stub_node_ids=frozenset(stubs)
            )
        )
    return out


def columnar_feed(ops):
    return columnarize(to_change_sets(interpret(ops)))


def serial_fingerprint(feed, config=CONFIG):
    session = SchemaSession(config, retain_union=True)
    for change_set in feed:
        session.apply(change_set)
    return schema_fingerprint(session.schema())


def shm_session(n_shards, config=CONFIG, **kwargs):
    session = ShardedSchemaSession(
        config, n_shards=n_shards, parallel=True, retain_union=True, **kwargs
    )
    assert session.handoff == "shm"
    return session


#: A pinned feed with cross-batch edges, a node deletion (broadcast +
#: stub cleanup), and an edge deletion -- the full protocol surface.
PINNED_OPS = [
    (
        "insert",
        [
            ("v1", "Person", {"person_id": 1, "name": "a"}),
            ("v2", "Org", {"org_id": 2, "url": "u"}),
            ("v3", "Post", {"post_id": 3, "rank": "r"}),
        ],
        [(0, 1), (2, 0)],
    ),
    ("del_nodes", [1]),
    (
        "insert",
        [
            ("v4", "Person", {"person_id": 4, "name": "b", "age": 9}),
            ("v5", "Org", {"org_id": 5}),
        ],
        [(3, 0), (1, 2)],
    ),
    ("del_edges", [0]),
    (
        "insert",
        [("v6", "Post", {"post_id": 6, "url": "w"})],
        [(0, 5)],
    ),
]


class TestShmHandoffMatchesSerial:
    @given(ops=operation_scripts())
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fingerprint_identical_across_shard_counts(self, ops):
        feed = columnar_feed(ops)
        reference = serial_fingerprint(feed)
        for n_shards in SHARD_COUNTS:
            with shm_session(n_shards) as session:
                for change_set in feed:
                    session.apply(change_set)
                fingerprint = schema_fingerprint(session.schema())
            assert fingerprint == reference, f"n_shards={n_shards} diverged"
        assert_no_leaked_blocks()

    def test_ingest_stream_matches_apply_loop(self):
        feed = columnar_feed(PINNED_OPS)
        reference = serial_fingerprint(feed)
        for n_shards in SHARD_COUNTS:
            with shm_session(n_shards) as session:
                session.ingest_stream(feed)
                streamed = schema_fingerprint(session.schema())
            assert streamed == reference, f"n_shards={n_shards} diverged"
        assert_no_leaked_blocks()


class TestShmWorkerFaults:
    def test_killed_worker_retries_without_surfacing(self):
        feed = columnar_feed(PINNED_OPS)
        reference = serial_fingerprint(feed)
        session = shm_session(2, retry_backoff=0.01)
        try:
            for index, change_set in enumerate(feed):
                if index == 2:
                    FaultInjector.kill_process(session.worker_pids()[0])
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    session.apply(change_set)
            assert [e.kind for e in session.fault_events] == ["retry"]
            assert session.degraded_shards == []
            assert schema_fingerprint(session.schema()) == reference
        finally:
            session.close()
        assert_no_leaked_blocks()

    def test_exhausted_retries_degrade_and_rebase(self):
        """Degraded shards replay shm parts in-process: the change-sets
        were interned against the coordinator lineage, so the in-process
        fallback must rebase them -- a wrong-lineage decode would produce
        a divergent (not crashing) schema, which only the fingerprint
        oracle catches."""
        feed = columnar_feed(PINNED_OPS)
        reference = serial_fingerprint(feed)
        session = shm_session(2, max_shard_retries=0, retry_backoff=0.01)
        try:
            for index, change_set in enumerate(feed):
                if index == 2:
                    for pid in session.worker_pids().values():
                        FaultInjector.kill_process(pid)
                    with pytest.warns(DegradedModeWarning, match="in-process"):
                        session.apply(change_set)
                else:
                    session.apply(change_set)
            assert session.degraded_shards == [0, 1]
            assert schema_fingerprint(session.schema()) == reference
        finally:
            session.close()
        assert_no_leaked_blocks()


class TestShmCheckpointRecovery:
    def test_checkpoint_restore_mid_stream(self, tmp_path):
        feed = columnar_feed(PINNED_OPS)
        reference = serial_fingerprint(feed)
        split = len(feed) // 2
        with shm_session(2) as session:
            for change_set in feed[:split]:
                session.apply(change_set)
            directory = session.checkpoint(tmp_path / "ck")
        assert_no_leaked_blocks()

        resumed = ShardedSchemaSession.restore(directory, parallel=True)
        try:
            for change_set in feed[split:]:
                resumed.apply(change_set)
            assert schema_fingerprint(resumed.schema()) == reference
        finally:
            resumed.close()
        assert_no_leaked_blocks()


class TestMinHashKernel:
    def test_active_kernel_matches_availability(self):
        expected = "numba" if numba_available() else "numpy"
        assert active_minhash_kernel() == expected

    @pytest.mark.skipif(
        numba_available(), reason="numba installed; forcing it succeeds"
    )
    def test_forcing_numba_without_numba_raises(self):
        with pytest.raises(ConfigurationError, match="numba"):
            configure_minhash_kernel("numba")
        assert active_minhash_kernel() == "numpy"

    @pytest.mark.skipif(
        not numba_available(),
        reason="numba not installed; compiled kernel unavailable "
        "(numpy fallback is exercised by every other test)",
    )
    def test_numba_kernel_bit_identical_to_numpy(self):
        rng = np.random.default_rng(11)
        token_sets = [
            {f"tok{value}" for value in rng.integers(0, 5000, size=size)}
            for size in (0, 1, 3, 17, 64, 200)
        ]
        # Fresh instances per kernel: signature() memoizes per instance,
        # so reusing one would compare a cache hit against itself.
        try:
            assert configure_minhash_kernel("numpy") == "numpy"
            lsh_numpy = MinHashLSH(num_tables=64, band_size=2, seed=23)
            numpy_sigs = [lsh_numpy.signature(t) for t in token_sets]
            assert configure_minhash_kernel("numba") == "numba"
            lsh_numba = MinHashLSH(num_tables=64, band_size=2, seed=23)
            numba_sigs = [lsh_numba.signature(t) for t in token_sets]
        finally:
            configure_minhash_kernel("auto")
        for tokens, left, right in zip(token_sets, numpy_sigs, numba_sigs):
            np.testing.assert_array_equal(left, right)
            np.testing.assert_array_equal(
                right, scalar_signature(lsh_numpy, tokens)
            )

"""Property-based equivalence: structural dedup on vs off.

Content-addressable dedup (`structural_dedup`) routes rows whose element
signature was seen in a prior batch through per-signature repeat
clusters instead of the full preprocess/LSH/extract pipeline.  It is an
*exact* optimisation: for random interleaved insert/delete columnar
feeds -- drawn repeat-heavy, because that is the regime the fast path
actually fires in -- the discovered schema must be fingerprint-identical
with dedup on and off, at every tested shard count, and across durable
checkpoint/restore and WAL crash-replay (which must also round-trip the
signature store's refcounts exactly).

The generators keep every edge's endpoints inside its own change-set,
so feeds are endpoint-complete without stub shipping; stub interactions
with dedup refcounts are pinned separately in the sharding suite.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.recovery import DurableSchemaSession
from repro.core.session import SchemaSession
from repro.core.sharding import ShardedSchemaSession
from repro.graph.changes import ChangeSet
from repro.graph.columnar import BatchBuilder, global_interner
from repro.schema.model import schema_fingerprint

SHARD_COUNTS = (1, 2, 4)

#: Hot structure pool: repeats draw from here, so most rows share a
#: small set of element signatures (the dedup fast path's habitat).
HOT_NODES = (
    ("Person", ("age", "name")),
    ("Person", ("name",)),
    ("Org", ("url",)),
    ("Post", ("name", "rank")),
)
HOT_EDGES = (
    ("KNOWS", ("w",)),
    ("LIKES", ()),
)
INT_KEYS = {"age", "rank", "w"}


def _value(key: str, serial: int):
    return serial if key in INT_KEYS else f"{key}-{serial}"


def _config(dedup: bool) -> PGHiveConfig:
    # MinHash + AND grouping is the regime where the repeat split
    # engages (exact structure grouping); dedup is a no-op elsewhere.
    return PGHiveConfig(
        method=ClusteringMethod.MINHASH,
        seed=11,
        infer_keys=True,
        structural_dedup=dedup,
    )


@st.composite
def dedup_scripts(draw):
    """Interleaved insert/delete ops over a repeat-heavy structure mix."""
    ops = []
    for _ in range(draw(st.integers(2, 5))):
        kind = draw(st.sampled_from(["insert", "insert", "del_nodes", "del_edges"]))
        if kind == "insert":
            nodes = []
            for _ in range(draw(st.integers(1, 4))):
                # ~80% of rows reuse a hot structure; the rest mint a
                # fresh key-set so first-instance and repeat rows mix
                # inside single batches as well as across them.
                pick = draw(st.integers(0, 9))
                nodes.append(pick if pick < 8 else None)
            edges = [draw(st.integers(0, 7)) for _ in range(draw(st.integers(0, 2)))]
            ops.append(("insert", nodes, edges))
        else:
            ops.append((kind, draw(st.lists(st.integers(0, 99), min_size=1, max_size=2))))
    return ops


def build_feed(ops) -> list[ChangeSet]:
    """Resolve a script into columnar change-sets (global interner).

    Inserts become :class:`BatchBuilder` batches whose edges connect
    nodes of the same batch (endpoint-complete); deletes target
    previously-inserted ids, exercising refcount decrements.
    """
    interner = global_interner()
    serial = 0
    node_ids: list[str] = []
    edge_ids: list[str] = []
    feed: list[ChangeSet] = []
    for op in ops:
        if op[0] == "insert":
            _, node_picks, edge_picks = op
            builder = BatchBuilder(interner)
            batch_nodes = []
            for pick in node_picks:
                serial += 1
                if pick is not None:
                    label, keys = HOT_NODES[pick % len(HOT_NODES)]
                else:
                    label, keys = "Person", ("name", f"k{serial}")
                node_id = f"v{serial}"
                builder.add_node(
                    node_id,
                    interner.intern_labels([label]),
                    interner.intern_keys(keys),
                    tuple(_value(key, serial) for key in keys),
                )
                batch_nodes.append(node_id)
                node_ids.append(node_id)
            for pick in edge_picks:
                if len(batch_nodes) < 2:
                    break
                serial += 1
                label, keys = HOT_EDGES[pick % len(HOT_EDGES)]
                edge_id = f"r{serial}"
                builder.add_edge(
                    edge_id,
                    batch_nodes[pick % len(batch_nodes)],
                    batch_nodes[(pick + 1) % len(batch_nodes)],
                    interner.intern_labels([label]),
                    interner.intern_keys(keys),
                    tuple(_value(key, serial) for key in keys),
                )
                edge_ids.append(edge_id)
            feed.append(ChangeSet.inserts_columnar(builder.freeze()))
        elif op[0] == "del_nodes":
            if not node_ids:
                continue
            targets = sorted({node_ids[i % len(node_ids)] for i in op[1]})
            feed.append(ChangeSet.deletions(nodes=targets))
        else:
            if not edge_ids:
                continue
            targets = sorted({edge_ids[i % len(edge_ids)] for i in op[1]})
            feed.append(ChangeSet.deletions(edges=targets))
    return feed


def drive(feed, dedup: bool, n_shards: int = 1):
    if n_shards == 1:
        session = SchemaSession(_config(dedup), retain_union=True)
    else:
        session = ShardedSchemaSession(
            _config(dedup), n_shards=n_shards, retain_union=True
        )
    for change_set in feed:
        session.apply(change_set)
    return session


class TestDedupMatchesNoDedup:
    @given(ops=dedup_scripts())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fingerprint_identical_at_all_shard_counts(self, ops):
        feed = build_feed(ops)
        for n_shards in SHARD_COUNTS:
            off = schema_fingerprint(drive(feed, dedup=False, n_shards=n_shards).schema())
            on = schema_fingerprint(drive(feed, dedup=True, n_shards=n_shards).schema())
            assert on == off, f"n_shards={n_shards} diverged with dedup on"

    def test_repeat_fast_path_engages(self):
        """Pinned: cross-batch repeats actually take the dedup path.

        Two batches of identical structures leave the second batch's
        rows as pure repeats; the store must hold their live refcounts
        (one per inserted row) and the schema must match dedup-off.
        """
        ops = [
            ("insert", [0, 0, 1], [0]),
            ("insert", [0, 1, 2], [0, 1]),
            ("del_nodes", [0]),
            ("insert", [0, 2], []),
        ]
        feed = build_feed(ops)
        on = drive(feed, dedup=True)
        off = drive(feed, dedup=False)
        assert schema_fingerprint(on.schema()) == schema_fingerprint(off.schema())
        refcounts = on._dstate.signatures.refcounts
        assert any(count > 1 for count in refcounts.values())
        # Both sessions maintain refcounts (the store also serves WAL
        # compaction); the split being on or off must not change them.
        assert refcounts == off._dstate.signatures.refcounts


class TestDedupSurvivesRecovery:
    @given(
        ops=dedup_scripts(),
        crash_fraction=st.floats(0.0, 1.0),
        with_checkpoint=st.booleans(),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_crash_replay_round_trips_signature_store(
        self, ops, crash_fraction, with_checkpoint, tmp_path_factory
    ):
        """Recover == never crashed, with dedup on -- and the recovered
        signature store's refcounts equal the uninterrupted run's."""
        feed = build_feed(ops)
        reference = drive(feed, dedup=True)
        want_fp = schema_fingerprint(reference.schema())
        want_refcounts = dict(reference._dstate.signatures.refcounts)

        crash_at = round(crash_fraction * len(feed))
        directory = tmp_path_factory.mktemp("dedup-oracle") / "sess"
        session = DurableSchemaSession(
            directory, _config(True), schema_name="s", fsync="off",
            retain_union=True,
        )
        for index, change_set in enumerate(feed[:crash_at]):
            session.apply(change_set)
            if with_checkpoint and index + 1 == max(1, crash_at // 2):
                session.checkpoint()
        del session  # crash at a record boundary

        recovered = DurableSchemaSession.recover(
            directory, config=_config(True), schema_name="s", fsync="off",
            retain_union=True,
        )
        assert recovered.sequence == crash_at
        for change_set in feed[recovered.sequence:]:
            recovered.apply(change_set)
        assert schema_fingerprint(recovered.schema()) == want_fp
        assert dict(recovered._dstate.signatures.refcounts) == want_refcounts
        recovered.close()

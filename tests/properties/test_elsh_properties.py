"""Property-based tests for Euclidean LSH behaviour."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.lsh.base import GroupingRule, elsh_collision_probability
from repro.lsh.elsh import EuclideanLSH

finite_floats = st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False)


class TestELSHInvariants:
    @given(
        vector=arrays(np.float64, 6, elements=finite_floats),
        bucket=st.floats(0.1, 10.0),
        tables=st.integers(1, 12),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_identical_vectors_always_cohabit(self, vector, bucket, tables, seed):
        lsh = EuclideanLSH(bucket, tables, seed=seed)
        stacked = np.vstack([vector, vector.copy()])
        signatures = lsh.signatures(stacked)
        assert np.array_equal(signatures[0], signatures[1])
        clusters = lsh.cluster(stacked, GroupingRule.AND)
        assert clusters == [[0, 1]]

    @given(
        vectors=arrays(
            np.float64, (7, 4), elements=st.floats(-5, 5, allow_nan=False)
        ),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_and_clusters_refine_or_clusters(self, vectors, seed):
        lsh = EuclideanLSH(1.0, 4, seed=seed)
        and_clusters = lsh.cluster(vectors, GroupingRule.AND)
        or_clusters = lsh.cluster(vectors, GroupingRule.OR)
        or_membership = {
            i: n for n, cluster in enumerate(or_clusters) for i in cluster
        }
        for cluster in and_clusters:
            # Every AND cluster lies within a single OR cluster.
            assert len({or_membership[i] for i in cluster}) == 1

    @given(
        vectors=arrays(
            np.float64, (5, 3), elements=st.floats(-5, 5, allow_nan=False)
        ),
        seed=st.integers(0, 20),
        rule=st.sampled_from(list(GroupingRule)),
    )
    @settings(max_examples=40, deadline=None)
    def test_clusters_partition_rows(self, vectors, seed, rule):
        lsh = EuclideanLSH(2.0, 3, seed=seed)
        clusters = lsh.cluster(vectors, rule)
        flat = sorted(i for cluster in clusters for i in cluster)
        assert flat == list(range(5))


class TestCollisionProbabilityProperties:
    @given(
        near=st.floats(0.01, 5.0),
        far_multiplier=st.floats(1.5, 20.0),
        bucket=st.floats(0.1, 20.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_closer_pairs_more_likely_to_collide(
        self, near, far_multiplier, bucket
    ):
        far = near * far_multiplier
        assert elsh_collision_probability(
            near, bucket
        ) > elsh_collision_probability(far, bucket)

    @given(distance=st.floats(0.01, 50.0), bucket=st.floats(0.01, 50.0))
    @settings(max_examples=100, deadline=None)
    def test_probability_in_unit_interval(self, distance, bucket):
        p = elsh_collision_probability(distance, bucket)
        assert 0.0 <= p <= 1.0

    @given(distance=st.floats(0.1, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_empirical_collision_rate_matches_theory(self, distance):
        # Monte-Carlo check of the Datar et al. formula with one table.
        bucket = 2.0
        lsh = EuclideanLSH(bucket, num_tables=200, seed=42)
        left = np.zeros((1, 3))
        right = np.zeros((1, 3))
        right[0, 0] = distance
        signatures = lsh.signatures(np.vstack([left, right]))
        empirical = float(np.mean(signatures[0] == signatures[1]))
        theoretical = elsh_collision_probability(distance, bucket)
        assert abs(empirical - theoretical) < 0.15

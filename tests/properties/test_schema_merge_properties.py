"""Property-based tests for schema merging (section 4.6 generalisation)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema.merge import merge_schemas
from repro.schema.model import EdgeType, NodeType, SchemaGraph, subsumes

label_pool = ["Person", "Org", "Post", "Gene", "AS"]
key_pool = ["name", "age", "url", "rank", "size", "asn"]


@st.composite
def schemas(draw):
    schema = SchemaGraph("s")
    node_count = draw(st.integers(1, 4))
    tokens_used = set()
    for index in range(node_count):
        labels = draw(
            st.frozensets(st.sampled_from(label_pool), max_size=2)
        )
        token = "+".join(sorted(labels))
        if labels and token in tokens_used:
            labels = frozenset()  # avoid duplicate labelled tokens
        tokens_used.add(token)
        node_type = NodeType(f"n{index}", labels, abstract=not labels)
        keys = draw(st.frozensets(st.sampled_from(key_pool), max_size=4))
        node_type.record_instance(f"n{index}-i", keys)
        schema.add_node_type(node_type)
    edge_count = draw(st.integers(0, 3))
    for index in range(edge_count):
        labels = draw(
            st.frozensets(st.sampled_from(["KNOWS", "LIKES", "AT"]), min_size=1, max_size=1)
        )
        edge_type = EdgeType(f"e{index}", labels)
        keys = draw(st.frozensets(st.sampled_from(key_pool), max_size=2))
        edge_type.record_instance(f"e{index}-i", keys)
        edge_type.source_tokens = set(
            draw(st.sets(st.sampled_from(label_pool), min_size=1, max_size=2))
        )
        edge_type.target_tokens = set(
            draw(st.sets(st.sampled_from(label_pool), min_size=1, max_size=2))
        )
        schema.add_edge_type(edge_type)
    return schema


class TestMergeGeneralises:
    @given(left=schemas(), right=schemas())
    @settings(max_examples=60, deadline=None)
    def test_merge_subsumes_both_inputs(self, left, right):
        merged = merge_schemas(left, right)
        assert subsumes(merged, left)
        assert subsumes(merged, right)

    @given(schema=schemas())
    @settings(max_examples=40, deadline=None)
    def test_self_merge_adds_no_labelled_types(self, schema):
        merged = merge_schemas(schema, schema)
        labelled_before = sum(1 for t in schema.node_types() if t.labels)
        labelled_after = sum(1 for t in merged.node_types() if t.labels)
        assert labelled_after == labelled_before

    @given(left=schemas(), right=schemas())
    @settings(max_examples=60, deadline=None)
    def test_instances_preserved(self, left, right):
        expected = set()
        for schema in (left, right):
            for node_type in schema.node_types():
                expected |= node_type.instance_ids
        merged = merge_schemas(left, right)
        got = set()
        for node_type in merged.node_types():
            got |= node_type.instance_ids
        assert got == expected

    @given(left=schemas(), right=schemas())
    @settings(max_examples=60, deadline=None)
    def test_merge_never_shrinks_type_count_below_either(self, left, right):
        merged = merge_schemas(left, right)
        labelled_tokens_left = {
            t.token for t in left.node_types() if t.labels
        }
        merged_tokens = {t.token for t in merged.node_types() if t.labels}
        assert labelled_tokens_left <= merged_tokens

"""Property-based tests on whole-pipeline guarantees (section 4.7).

Random small property graphs are generated directly (not via the dataset
specs) so the pipeline faces arbitrary label/property shapes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.graph.model import Edge, Node, PropertyGraph

label_pool = ["A", "B", "C", "D"]
key_pool = ["k1", "k2", "k3", "k4"]


@st.composite
def random_graphs(draw):
    graph = PropertyGraph("random")
    node_count = draw(st.integers(2, 14))
    for index in range(node_count):
        labels = draw(st.frozensets(st.sampled_from(label_pool), max_size=2))
        keys = draw(st.frozensets(st.sampled_from(key_pool), max_size=3))
        graph.add_node(Node(f"n{index}", labels, {k: 1 for k in keys}))
    edge_count = draw(st.integers(0, 16))
    for index in range(edge_count):
        source = f"n{draw(st.integers(0, node_count - 1))}"
        target = f"n{draw(st.integers(0, node_count - 1))}"
        labels = draw(
            st.frozensets(st.sampled_from(["R", "S"]), max_size=1)
        )
        keys = draw(st.frozensets(st.sampled_from(["w", "t"]), max_size=2))
        graph.add_edge(Edge(f"e{index}", source, target, labels, {k: 1 for k in keys}))
    return graph


@st.composite
def configs(draw):
    return PGHiveConfig(
        method=draw(st.sampled_from(list(ClusteringMethod))),
        seed=draw(st.integers(0, 5)),
        embedding_dim=8,
        embedding_epochs=1,
    )


class TestTypeCompleteness:
    @given(graph=random_graphs(), config=configs())
    @settings(max_examples=30, deadline=None)
    def test_every_element_assigned_to_exactly_one_type(self, graph, config):
        result = PGHive(config).discover(graph)
        node_assignment = result.node_assignments()
        assert set(node_assignment) == set(graph.node_ids())
        edge_assignment = result.edge_assignments()
        assert set(edge_assignment) == set(graph.edge_ids())
        # Types partition instances: totals agree.
        node_total = sum(
            t.instance_count for t in result.schema.node_types()
        )
        assert node_total == graph.node_count

    @given(graph=random_graphs(), config=configs())
    @settings(max_examples=30, deadline=None)
    def test_no_label_or_property_lost(self, graph, config):
        # Section 4.7 "Type completeness": for every node there is a type
        # containing its labels and all its property keys.
        result = PGHive(config).discover(graph)
        assignment = result.node_assignments()
        for node in graph.nodes():
            node_type = result.schema.node_type(assignment[node.node_id])
            assert node.labels <= frozenset(node_type.labels)
            assert node.property_keys <= node_type.property_keys

    @given(graph=random_graphs(), config=configs())
    @settings(max_examples=30, deadline=None)
    def test_mandatory_properties_sound(self, graph, config):
        # Section 4.7: a property marked mandatory appears in EVERY instance.
        result = PGHive(config).discover(graph)
        assignment = result.node_assignments()
        by_type: dict[str, list] = {}
        for node in graph.nodes():
            by_type.setdefault(assignment[node.node_id], []).append(node)
        for node_type in result.schema.node_types():
            members = by_type.get(node_type.type_id, [])
            for key in node_type.mandatory_keys():
                assert all(key in m.properties for m in members)

    @given(graph=random_graphs(), config=configs())
    @settings(max_examples=20, deadline=None)
    def test_cardinality_upper_bounds_sound(self, graph, config):
        from collections import defaultdict

        result = PGHive(config).discover(graph)
        edge_assignment = result.edge_assignments()
        for edge_type in result.schema.edge_types():
            outs = defaultdict(set)
            ins = defaultdict(set)
            for edge in graph.edges():
                if edge_assignment[edge.edge_id] != edge_type.type_id:
                    continue
                outs[edge.source_id].add(edge.target_id)
                ins[edge.target_id].add(edge.source_id)
            max_out = max((len(v) for v in outs.values()), default=0)
            max_in = max((len(v) for v in ins.values()), default=0)
            assert edge_type.cardinality_bounds.max_out == max_out
            assert edge_type.cardinality_bounds.max_in == max_in

"""Property-based tests for Lemmas 1 and 2 (monotone type merging)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema.cardinality import CardinalityBounds
from repro.schema.model import EdgeType, NodeType

labels_strategy = st.frozensets(
    st.sampled_from(["Person", "Org", "Post", "Place", "Student", "Paper"]),
    max_size=4,
)
keys_strategy = st.frozensets(
    st.sampled_from(["name", "age", "url", "bday", "content", "rank", "size"]),
    max_size=5,
)
tokens_strategy = st.sets(
    st.sampled_from(["Person", "Org", "Post", "", "A+B"]), max_size=3
)


def build_node_type(type_id, labels, keys, instances):
    node_type = NodeType(type_id, labels, abstract=not labels)
    for index in range(instances):
        node_type.record_instance(f"{type_id}-i{index}", keys)
    return node_type


def build_edge_type(type_id, labels, keys, sources, targets, bounds):
    edge_type = EdgeType(type_id, labels, abstract=not labels)
    edge_type.record_instance(f"{type_id}-e0", keys)
    edge_type.source_tokens = set(sources)
    edge_type.target_tokens = set(targets)
    if bounds is not None:
        edge_type.cardinality_bounds = bounds
        edge_type.cardinality = bounds.classify()
    return edge_type


class TestLemma1NodeMonotonicity:
    @given(
        left_labels=labels_strategy,
        left_keys=keys_strategy,
        right_labels=labels_strategy,
        right_keys=keys_strategy,
        left_count=st.integers(0, 5),
        right_count=st.integers(0, 5),
    )
    @settings(max_examples=200)
    def test_no_label_or_key_lost(
        self, left_labels, left_keys, right_labels, right_keys, left_count,
        right_count,
    ):
        left = build_node_type("L", left_labels, left_keys, left_count)
        right = build_node_type("R", right_labels, right_keys, right_count)
        merged = left.absorb(right)
        assert left_labels <= merged.labels
        assert right_labels <= merged.labels
        if left_count:
            assert left_keys <= merged.property_keys
        if right_count:
            assert right_keys <= merged.property_keys
        assert merged.instance_count == left_count + right_count

    @given(
        labels=labels_strategy,
        keys=keys_strategy,
        count=st.integers(1, 5),
    )
    @settings(max_examples=100)
    def test_self_union_idempotent_on_labels(self, labels, keys, count):
        left = build_node_type("L", labels, keys, count)
        right = build_node_type("R", labels, keys, count)
        merged = left.absorb(right)
        assert merged.labels == set(labels)
        assert merged.property_keys == keys


class TestLemma2EdgeMonotonicity:
    @given(
        left_labels=labels_strategy,
        left_keys=keys_strategy,
        left_sources=tokens_strategy,
        left_targets=tokens_strategy,
        right_labels=labels_strategy,
        right_keys=keys_strategy,
        right_sources=tokens_strategy,
        right_targets=tokens_strategy,
        left_bounds=st.one_of(
            st.none(),
            st.builds(
                CardinalityBounds, st.integers(0, 9), st.integers(0, 9)
            ),
        ),
        right_bounds=st.one_of(
            st.none(),
            st.builds(
                CardinalityBounds, st.integers(0, 9), st.integers(0, 9)
            ),
        ),
    )
    @settings(max_examples=200)
    def test_no_label_key_or_endpoint_lost(
        self,
        left_labels,
        left_keys,
        left_sources,
        left_targets,
        right_labels,
        right_keys,
        right_sources,
        right_targets,
        left_bounds,
        right_bounds,
    ):
        left = build_edge_type(
            "L", left_labels, left_keys, left_sources, left_targets, left_bounds
        )
        right = build_edge_type(
            "R",
            right_labels,
            right_keys,
            right_sources,
            right_targets,
            right_bounds,
        )
        merged = left.absorb(right)
        assert left_labels <= merged.labels
        assert right_labels <= merged.labels
        assert left_keys <= merged.property_keys
        assert right_keys <= merged.property_keys
        assert left_sources <= merged.source_tokens
        assert right_sources <= merged.source_tokens
        assert left_targets <= merged.target_tokens
        assert right_targets <= merged.target_tokens
        if left_bounds is not None and right_bounds is not None:
            assert merged.cardinality_bounds.max_out == max(
                left_bounds.max_out, right_bounds.max_out
            )
            assert merged.cardinality_bounds.max_in == max(
                left_bounds.max_in, right_bounds.max_in
            )

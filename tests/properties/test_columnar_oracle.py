"""Property-based equivalence: columnar ingest vs the element-wise oracle.

The columnar fast path must be schema-fingerprint-identical to classic
element-wise ingestion for every feed: same clusters, same types, same
specs, datatypes, cardinalities, and candidate keys.  These tests drive
interleaved insert/delete scripts through two sessions -- one fed
:class:`ChangeSet` element inserts, one fed the same content as
:class:`ElementBatch` payloads -- and compare fingerprints after every
applied change-set, for both LSH families.  Round-trip and interner
persistence tests pin the converter boundary and the checkpoint story.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.graph.columnar as columnar_module
from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.session import SchemaSession
from repro.graph.changes import ChangeSet
from repro.graph.columnar import ElementBatch, Interner
from repro.graph.model import Edge, Node, PropertyGraph
from repro.schema.model import schema_fingerprint

LABELS = ["Person", "Org", ""]
KEYS = ["name", "age", "score", "flag"]
VALUES = {
    "name": lambda serial: f"name-{serial}",
    "age": lambda serial: serial % 7,
    "score": lambda serial: serial * 0.5,
    "flag": lambda serial: serial % 2 == 0,
}


@st.composite
def operation_scripts(draw):
    """Insert/delete scripts over a shared element universe."""
    ops = []
    serial = 0
    for _ in range(draw(st.integers(2, 5))):
        kind = draw(st.sampled_from(["insert", "insert", "del_nodes", "del_edges"]))
        if kind == "insert":
            nodes = []
            for _ in range(draw(st.integers(1, 4))):
                serial += 1
                label = draw(st.sampled_from(LABELS))
                keys = draw(st.frozensets(st.sampled_from(KEYS), max_size=3))
                nodes.append((f"v{serial}", label, sorted(keys), serial))
            edge_picks = [
                (
                    draw(st.integers(0, 10_000)),
                    draw(st.integers(0, 10_000)),
                    draw(st.sampled_from(["REL", ""])),
                )
                for _ in range(draw(st.integers(0, 2)))
            ]
            ops.append(("insert", nodes, edge_picks))
        else:
            ops.append((kind, draw(st.lists(st.integers(0, 10_000), min_size=1, max_size=2))))
    return ops


def interpret(ops):
    """Resolve a script into endpoint-complete change-set payloads.

    Mirrors the batch-stream convention every reader follows: an edge
    referencing a node from an earlier change-set ships a stub copy of
    it, marked in ``stub_node_ids``, so identical change-sets feed both
    the element-wise and the columnar session.
    """
    inserted_edges: list[str] = []
    live: dict[str, Node] = {}
    serial = 0
    resolved = []
    for op in ops:
        if op[0] == "insert":
            _, node_specs, edge_picks = op
            nodes = []
            fresh_ids = set()
            for node_id, label, keys, value_seed in node_specs:
                labels = frozenset({label}) if label else frozenset()
                node = Node(
                    node_id,
                    labels,
                    {key: VALUES[key](value_seed) for key in keys},
                )
                nodes.append(node)
                live[node_id] = node
                fresh_ids.add(node_id)
            pool = list(live)
            edges = []
            stub_ids = set()
            shipped = set(fresh_ids)
            for left, right, label in edge_picks:
                if len(pool) < 2:
                    break
                serial += 1
                edge_id = f"r{serial}"
                source = pool[left % len(pool)]
                target = pool[right % len(pool)]
                for endpoint in (source, target):
                    if endpoint not in shipped:
                        shipped.add(endpoint)
                        stub_ids.add(endpoint)
                        nodes.append(live[endpoint])
                edges.append(
                    Edge(
                        edge_id,
                        source,
                        target,
                        frozenset({label}) if label else frozenset(),
                        {"since": 2000 + serial % 9},
                    )
                )
                inserted_edges.append(edge_id)
            resolved.append(("insert", nodes, edges, frozenset(stub_ids)))
        elif op[0] == "del_nodes":
            if not live:
                continue
            pool = list(live)
            targets = sorted({pool[i % len(pool)] for i in op[1]})
            for node_id in targets:
                live.pop(node_id, None)
            resolved.append(("del_nodes", targets))
        else:
            if not inserted_edges:
                continue
            targets = sorted({inserted_edges[i % len(inserted_edges)] for i in op[1]})
            resolved.append(("del_edges", targets))
    return resolved


def run_oracle(resolved, config):
    """Drive element-wise and columnar sessions; compare every snapshot."""
    element = SchemaSession(config, schema_name="oracle", retain_union=True)
    columnar = SchemaSession(config, schema_name="oracle", retain_union=True)
    for op in resolved:
        if op[0] == "insert":
            _, nodes, edges, stub_ids = op
            element.apply(
                ChangeSet(nodes=nodes, edges=edges, stub_node_ids=stub_ids)
            )
            columnar.apply(
                ChangeSet(
                    columnar=ElementBatch.from_elements(nodes, edges),
                    stub_node_ids=stub_ids,
                )
            )
        elif op[0] == "del_nodes":
            element.apply(ChangeSet.deletions(nodes=op[1]))
            columnar.apply(ChangeSet.deletions(nodes=op[1]))
        else:
            element.apply(ChangeSet.deletions(edges=op[1]))
            columnar.apply(ChangeSet.deletions(edges=op[1]))
        assert schema_fingerprint(element.schema()) == schema_fingerprint(
            columnar.schema()
        )


class TestColumnarMatchesElementOracle:
    @given(ops=operation_scripts())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_minhash_interleaved_feed(self, ops):
        config = PGHiveConfig(
            method=ClusteringMethod.MINHASH, seed=5, infer_keys=True
        )
        run_oracle(interpret(ops), config)

    @given(ops=operation_scripts())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_elsh_interleaved_feed(self, ops):
        config = PGHiveConfig(method=ClusteringMethod.ELSH, seed=5)
        run_oracle(interpret(ops), config)


def sample_elements():
    nodes = [
        Node("a", frozenset({"P"}), {"x": 1, "y": "v", "z": [1, 2]}),
        Node("b", frozenset(), {"x": 2.5, "flag": True}),
        Node("c", frozenset({"P", "Q"}), {}),
    ]
    edges = [
        Edge("e1", "a", "b", frozenset({"R"}), {"w": 1.5}),
        Edge("e2", "b", "c", frozenset(), {}),
    ]
    return nodes, edges


class TestElementBatchRoundTrip:
    def test_from_elements_to_elements(self):
        nodes, edges = sample_elements()
        batch = ElementBatch.from_elements(nodes, edges)
        back_nodes, back_edges = batch.to_elements()
        assert back_nodes == nodes
        assert back_edges == edges

    def test_from_graph_to_property_graph(self):
        nodes, edges = sample_elements()
        graph = PropertyGraph("g")
        for node in nodes:
            graph.add_node(node)
        for edge in edges:
            graph.add_edge(edge)
        batch = ElementBatch.from_graph(graph)
        rebuilt = batch.to_property_graph("g")
        assert list(rebuilt.nodes()) == nodes
        assert list(rebuilt.edges()) == edges

    def test_value_columns_preserve_scalar_types(self):
        nodes, edges = sample_elements()
        batch = ElementBatch.from_elements(nodes, edges)
        back_a, back_b, _ = batch.to_elements()[0]
        assert isinstance(back_a.properties["x"], int)
        assert isinstance(back_b.properties["x"], float)
        assert back_b.properties["flag"] is True
        assert back_a.properties["z"] == [1, 2]

    def test_duplicate_edge_rows_keep_first(self):
        nodes, _ = sample_elements()
        edges = [
            Edge("e1", "a", "b", frozenset({"R"}), {"w": 1}),
            Edge("e1", "a", "c", frozenset({"S"}), {"w": 2}),
        ]
        batch = ElementBatch.from_elements(nodes, edges)
        assert batch.edge_count == 1
        _, back = batch.to_elements()
        assert back[0].target_id == "b"

    def test_ambiguous_label_tokens_stay_distinct(self):
        # {"A+B"} and {"A", "B"} share the token string "A+B" but must
        # keep their distinct label sets through the columnar path.
        nodes = [
            Node("a", frozenset({"A+B"}), {"x": 1}),
            Node("b", frozenset({"A", "B"}), {"x": 2}),
        ]
        batch = ElementBatch.from_elements(nodes, [])
        back, _ = batch.to_elements()
        assert back[0].labels == frozenset({"A+B"})
        assert back[1].labels == frozenset({"A", "B"})

    def test_dangling_columnar_edge_raises(self):
        from repro.errors import DanglingEdgeError

        with pytest.raises(DanglingEdgeError):
            ElementBatch.from_elements(
                [Node("a", frozenset({"P"}))],
                [Edge("e", "a", "missing", frozenset({"R"}))],
            )


class TestInternerPersistence:
    def test_checkpoint_restore_rewarms_fresh_interner(self, tmp_path, monkeypatch):
        nodes, edges = sample_elements()
        config = PGHiveConfig(method=ClusteringMethod.MINHASH)
        session = SchemaSession(config, schema_name="ck")
        session.apply(
            ChangeSet.inserts_columnar(ElementBatch.from_elements(nodes, edges))
        )
        before = schema_fingerprint(session.schema())
        path = session.checkpoint(tmp_path / "session.ckpt")

        fresh = Interner()
        monkeypatch.setattr(columnar_module, "_GLOBAL", fresh)
        restored = SchemaSession.restore(path)
        assert schema_fingerprint(restored.schema()) == before
        # The fresh process-wide interner was re-warmed from the snapshot.
        assert fresh.string_count > 0
        assert fresh.labelset_count > 0
        assert fresh.keyset_count > 0
        assert restored.discovery_state.interner is fresh

        # Continued columnar feeding through the restored session matches
        # the donor session continuing in-process.
        more_nodes = [Node("d", frozenset({"P"}), {"x": 9, "y": "w"})]
        restored.apply(
            ChangeSet.inserts_columnar(
                ElementBatch.from_elements(more_nodes, [], fresh)
            )
        )
        session.apply(
            ChangeSet.inserts_columnar(ElementBatch.from_elements(more_nodes, []))
        )
        assert schema_fingerprint(restored.schema()) == schema_fingerprint(
            session.schema()
        )

    def test_snapshot_merge_is_idempotent(self):
        interner = Interner()
        interner.intern_labels({"A", "B"})
        interner.intern_keys(["x", "y"])
        snapshot = interner.snapshot()
        other = Interner().merge_snapshot(snapshot)
        counts = (other.string_count, other.labelset_count, other.keyset_count)
        other.merge_snapshot(snapshot)
        assert counts == (
            other.string_count,
            other.labelset_count,
            other.keyset_count,
        )

    def test_minhash_ids_are_content_derived(self):
        from repro.lsh.minhash import token_content_id

        interner = Interner()
        sid = interner.intern_string("label:Person")
        assert interner.string_minhash_id(sid) == token_content_id("label:Person")


class TestColumnarPatternSignatures:
    def test_pattern_ids_match_string_tokenisation(self):
        from repro.lsh.minhash import MinHashLSH

        interner = Interner()
        labelset = interner.labelset(interner.intern_labels({"P"}))
        keyset_id = interner.intern_keys(["x", "y"])
        pattern = interner.node_pattern(labelset.token_sid, keyset_id)
        lsh_a = MinHashLSH(num_tables=8, band_size=2, seed=11)
        lsh_b = MinHashLSH(num_tables=8, band_size=2, seed=11)
        via_strings = lsh_a.signature(pattern.tokens)
        via_ids = lsh_b.signatures_batch(
            [pattern.tokens], token_ids=[pattern.minhash_ids]
        )[0]
        assert np.array_equal(via_strings, via_ids)

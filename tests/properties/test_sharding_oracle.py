"""Property-based equivalence: sharded discovery vs a single session.

For random interleaved insert/delete change feeds, a
:class:`ShardedSchemaSession` must land on a schema fingerprint-identical
to one :class:`SchemaSession` consuming the same feed -- for every tested
shard count, in serial mode (process-parallel mode is pinned separately
in ``tests/core/test_sharding.py``; it runs the same code in workers).

The generators produce *label-mergeable* feeds: every node carries a
label (plus a label-specific property so differently-labelled nodes stay
apart in feature space), and every edge's label encodes its endpoint
labels, so type reconciliation across shards is driven by exact token
matches -- the regime in which the merge is provably order-independent.
Abstract-type Jaccard absorption is order-sensitive by design (it already
is between the batches of a single session) and is out of scope here.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PGHiveConfig
from repro.core.session import SchemaSession
from repro.core.sharding import ShardedSchemaSession
from repro.graph.changes import ChangeSet
from repro.graph.model import Edge, Node
from repro.schema.model import schema_fingerprint

SHARD_COUNTS = (1, 2, 4, 7)
LABELS = ["Person", "Org", "Post"]
KEYS = ["name", "age", "url", "rank"]


@st.composite
def operation_scripts(draw):
    """A short interleaved insert/delete program over a shared universe."""
    ops = []
    serial = 0
    op_count = draw(st.integers(2, 5))
    for _ in range(op_count):
        kind = draw(st.sampled_from(["insert", "del_nodes", "del_edges"]))
        if kind == "insert":
            nodes = []
            for _ in range(draw(st.integers(1, 3))):
                serial += 1
                label = draw(st.sampled_from(LABELS))
                keys = draw(
                    st.frozensets(st.sampled_from(KEYS), min_size=0, max_size=3)
                )
                props = {k: f"{k}-{serial}" for k in sorted(keys)}
                # A label-specific key keeps differently-labelled nodes
                # far apart in feature space (see module docstring).
                props[f"{label.lower()}_id"] = serial
                nodes.append((f"v{serial}", label, props))
            edge_count = draw(st.integers(0, 2))
            edge_picks = [
                (draw(st.integers(0, 10_000)), draw(st.integers(0, 10_000)))
                for _ in range(edge_count)
            ]
            ops.append(("insert", nodes, edge_picks))
        else:
            picks = draw(st.lists(st.integers(0, 10_000), min_size=1, max_size=3))
            ops.append((kind, picks))
    return ops


def interpret(ops):
    """Resolve an abstract script into concrete per-op payloads.

    Edges only ever reference currently-live nodes (a deleted endpoint
    would make the feed invalid for every surface alike), and edge labels
    encode the endpoint labels.
    """
    edge_ids: list[str] = []
    live_nodes: dict[str, tuple[str, dict]] = {}
    serial = 0
    resolved = []
    for op in ops:
        if op[0] == "insert":
            _, nodes, edge_picks = op
            for node_id, label, props in nodes:
                live_nodes[node_id] = (label, props)
            edges = []
            pool = list(live_nodes)
            for left, right in edge_picks:
                if len(pool) < 2:
                    break
                serial += 1
                source = pool[left % len(pool)]
                target = pool[right % len(pool)]
                label = (
                    f"R_{live_nodes[source][0]}_{live_nodes[target][0]}"
                )
                edge_id = f"r{serial}"
                edges.append((edge_id, source, target, label))
                edge_ids.append(edge_id)
            resolved.append(("insert", nodes, edges))
        elif op[0] == "del_nodes":
            if not live_nodes:
                continue
            pool = sorted(live_nodes)
            targets = sorted({pool[i % len(pool)] for i in op[1]})
            for node_id in targets:
                live_nodes.pop(node_id, None)
            # Edges incident to deleted nodes cascade; edges created
            # *later* must not reference them (pool is rebuilt per op).
            resolved.append(("del_nodes", targets))
        else:
            if not edge_ids:
                continue
            targets = sorted({edge_ids[i % len(edge_ids)] for i in op[1]})
            resolved.append(("del_edges", targets))
    return resolved


def to_change_sets(resolved) -> list[ChangeSet]:
    change_sets = []
    for op in resolved:
        if op[0] == "insert":
            _, nodes, edges = op
            change_sets.append(
                ChangeSet.inserts(
                    nodes=[
                        Node(node_id, {label}, props)
                        for node_id, label, props in nodes
                    ],
                    edges=[
                        Edge(edge_id, source, target, {label})
                        for edge_id, source, target, label in edges
                    ],
                )
            )
        elif op[0] == "del_nodes":
            change_sets.append(ChangeSet.deletions(nodes=op[1]))
        else:
            change_sets.append(ChangeSet.deletions(edges=op[1]))
    return change_sets


def drive_single(change_sets, config):
    session = SchemaSession(config, retain_union=True)
    for change_set in change_sets:
        session.apply(change_set)
    return session.schema()


def drive_sharded(change_sets, config, n_shards):
    session = ShardedSchemaSession(config, n_shards=n_shards, retain_union=True)
    for change_set in change_sets:
        session.apply(change_set)
    return session.schema()


class TestShardingMatchesSingleSession:
    @given(ops=operation_scripts())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_all_shard_counts_fingerprint_identical(self, ops):
        change_sets = to_change_sets(interpret(ops))
        config = PGHiveConfig(seed=3, infer_keys=True)
        reference = schema_fingerprint(drive_single(change_sets, config))
        for n_shards in SHARD_COUNTS:
            sharded = schema_fingerprint(
                drive_sharded(change_sets, config, n_shards)
            )
            assert sharded == reference, f"n_shards={n_shards} diverged"

    def test_merge_is_shard_order_independent(self):
        """Pinned seed: merged reads agree for every shard count, and the
        merged state itself post-processes identically on repeat reads."""
        ops = [
            (
                "insert",
                [
                    ("v1", "Person", {"person_id": 1, "name": "a"}),
                    ("v2", "Org", {"org_id": 2, "url": "u"}),
                    ("v3", "Post", {"post_id": 3}),
                ],
                [(0, 1), (2, 0)],
            ),
            ("del_nodes", [1]),
            (
                "insert",
                [
                    ("v4", "Person", {"person_id": 4, "name": "b", "age": 9}),
                ],
                [(3, 0)],
            ),
        ]
        change_sets = to_change_sets(interpret(ops))
        config = PGHiveConfig(seed=7, infer_keys=True)
        fingerprints = {
            n: schema_fingerprint(drive_sharded(change_sets, config, n))
            for n in SHARD_COUNTS
        }
        reference = schema_fingerprint(drive_single(change_sets, config))
        assert all(fp == reference for fp in fingerprints.values())

"""Property-based tests for noise injection invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.noise import reduce_label_availability, remove_properties
from repro.graph.model import Edge, Node, PropertyGraph


@st.composite
def small_graphs(draw):
    graph = PropertyGraph("g")
    node_count = draw(st.integers(1, 12))
    for index in range(node_count):
        labels = draw(
            st.frozensets(st.sampled_from(["A", "B", "C"]), max_size=2)
        )
        key_count = draw(st.integers(0, 4))
        properties = {f"k{i}": i for i in range(key_count)}
        graph.add_node(Node(f"n{index}", labels, properties))
    edge_count = draw(st.integers(0, 10))
    for index in range(edge_count):
        source = f"n{draw(st.integers(0, node_count - 1))}"
        target = f"n{draw(st.integers(0, node_count - 1))}"
        graph.add_edge(
            Edge(f"e{index}", source, target, frozenset({"R"}), {"w": 1})
        )
    return graph


def total_properties(graph):
    return sum(len(n.properties) for n in graph.nodes()) + sum(
        len(e.properties) for e in graph.edges()
    )


class TestRemovePropertiesInvariants:
    @given(graph=small_graphs(), rate=st.floats(0.0, 1.0), seed=st.integers(0, 50))
    @settings(max_examples=80, deadline=None)
    def test_never_adds_properties(self, graph, rate, seed):
        noisy = remove_properties(graph, rate, seed)
        for node in graph.nodes():
            assert noisy.node(node.node_id).property_keys <= node.property_keys
        for edge in graph.edges():
            assert noisy.edge(edge.edge_id).property_keys <= edge.property_keys

    @given(graph=small_graphs(), rate=st.floats(0.0, 1.0), seed=st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_structure_preserved(self, graph, rate, seed):
        noisy = remove_properties(graph, rate, seed)
        assert noisy.node_count == graph.node_count
        assert noisy.edge_count == graph.edge_count
        for node in graph.nodes():
            assert noisy.node(node.node_id).labels == node.labels

    @given(graph=small_graphs(), rate=st.floats(0.0, 1.0), seed=st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, graph, rate, seed):
        first = remove_properties(graph, rate, seed)
        second = remove_properties(graph, rate, seed)
        assert total_properties(first) == total_properties(second)

    @given(graph=small_graphs(), seed=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_boundary_rates(self, graph, seed):
        untouched = remove_properties(graph, 0.0, seed)
        assert total_properties(untouched) == total_properties(graph)
        stripped = remove_properties(graph, 1.0, seed)
        assert total_properties(stripped) == 0


class TestLabelAvailabilityInvariants:
    @given(
        graph=small_graphs(),
        availability=st.floats(0.0, 1.0),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_labels_only_removed_never_invented(self, graph, availability, seed):
        reduced = reduce_label_availability(graph, availability, seed)
        for node in graph.nodes():
            reduced_labels = reduced.node(node.node_id).labels
            assert reduced_labels == node.labels or reduced_labels == frozenset()

    @given(
        graph=small_graphs(),
        availability=st.floats(0.0, 1.0),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_properties_untouched(self, graph, availability, seed):
        reduced = reduce_label_availability(graph, availability, seed)
        assert total_properties(reduced) == total_properties(graph)

    @given(graph=small_graphs(), seed=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_edge_labels_survive_unless_included(self, graph, seed):
        reduced = reduce_label_availability(graph, 0.0, seed)
        for edge in graph.edges():
            assert reduced.edge(edge.edge_id).labels == edge.labels
        harsher = reduce_label_availability(graph, 0.0, seed, include_edges=True)
        for edge in graph.edges():
            assert harsher.edge(edge.edge_id).labels == frozenset()

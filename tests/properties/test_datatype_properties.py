"""Property-based tests for datatype inference invariants (section 4.7)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema.datatypes import (
    DataType,
    generalize,
    infer_type,
    infer_value_type,
    is_value_compatible,
)

scalar_values = st.one_of(
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(max_size=12),
    st.dates().map(str),
)


class TestInferenceInvariants:
    @given(values=st.lists(scalar_values, min_size=1, max_size=30))
    @settings(max_examples=200)
    def test_inferred_type_compatible_with_every_value(self, values):
        # The section 4.7 guarantee: all values conform to the result.
        inferred = infer_type(values)
        for value in values:
            assert is_value_compatible(value, inferred)

    @given(value=scalar_values)
    @settings(max_examples=200)
    def test_value_compatible_with_own_type(self, value):
        assert is_value_compatible(value, infer_value_type(value))

    @given(values=st.lists(scalar_values, min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_order_independent(self, values):
        assert infer_type(values) is infer_type(list(reversed(values)))

    @given(
        values=st.lists(scalar_values, min_size=1, max_size=20),
        extra=scalar_values,
    )
    @settings(max_examples=100)
    def test_adding_values_only_generalises(self, values, extra):
        before = infer_type(values)
        after = infer_type(values + [extra])
        # after must be a generalisation of before.
        assert generalize(before, after) is after


class TestGeneralizeAlgebra:
    types = st.sampled_from(list(DataType))

    @given(left=types, right=types)
    def test_commutative(self, left, right):
        assert generalize(left, right) is generalize(right, left)

    @given(left=types, right=types, third=types)
    def test_associative(self, left, right, third):
        assert generalize(generalize(left, right), third) is generalize(
            left, generalize(right, third)
        )

    @given(data_type=types)
    def test_idempotent(self, data_type):
        assert generalize(data_type, data_type) is data_type

    @given(data_type=types)
    def test_string_is_absorbing(self, data_type):
        assert generalize(data_type, DataType.STRING) is DataType.STRING

"""Property-based tests: MinHash agreement estimates Jaccard similarity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh.minhash import MinHashLSH, exact_jaccard

token_sets = st.sets(
    st.text(alphabet="abcdefghij", min_size=1, max_size=4), min_size=0, max_size=20
)


class TestMinHashEstimatesJaccard:
    @given(left=token_sets, right=token_sets)
    @settings(max_examples=80, deadline=None)
    def test_estimate_within_tolerance(self, left, right):
        lsh = MinHashLSH(num_tables=256, band_size=1, seed=17)
        exact = exact_jaccard(left, right)
        estimate = lsh.estimate_jaccard(left, right)
        # 256 hashes: standard error sqrt(J(1-J)/256) <= 0.032; 5 sigma.
        assert abs(estimate - exact) <= 0.16

    @given(tokens=token_sets)
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_is_one(self, tokens):
        lsh = MinHashLSH(num_tables=32, seed=3)
        assert lsh.estimate_jaccard(tokens, set(tokens)) == 1.0

    @given(left=token_sets, right=token_sets)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, left, right):
        lsh = MinHashLSH(num_tables=64, seed=5)
        assert lsh.estimate_jaccard(left, right) == lsh.estimate_jaccard(
            right, left
        )

    @given(tokens=st.sets(st.text("abcde", min_size=1, max_size=3), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_signature_is_permutation_invariant(self, tokens):
        lsh = MinHashLSH(num_tables=16, seed=7)
        ordered = sorted(tokens)
        import numpy as np

        assert np.array_equal(
            lsh.signature(ordered), lsh.signature(reversed(ordered))
        )

    @given(
        base=st.sets(st.text("abcdef", min_size=1, max_size=3), min_size=2, max_size=12),
        extra=st.text("ghij", min_size=1, max_size=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_superset_similarity_below_one(self, base, extra):
        lsh = MinHashLSH(num_tables=512, band_size=1, seed=11)
        superset = set(base) | {extra}
        estimate = lsh.estimate_jaccard(base, superset)
        exact = exact_jaccard(base, superset)
        assert abs(estimate - exact) <= 0.15
        assert exact < 1.0

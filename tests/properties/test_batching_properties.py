"""Property-based tests for batch splitting invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.batching import reassemble, split_into_batches
from repro.graph.model import Edge, Node, PropertyGraph


@st.composite
def graphs_and_counts(draw):
    graph = PropertyGraph("g")
    node_count = draw(st.integers(1, 15))
    for index in range(node_count):
        graph.add_node(Node(f"n{index}", frozenset({"T"}), {"k": index}))
    edge_count = draw(st.integers(0, 20))
    for index in range(edge_count):
        source = f"n{draw(st.integers(0, node_count - 1))}"
        target = f"n{draw(st.integers(0, node_count - 1))}"
        graph.add_edge(Edge(f"e{index}", source, target, frozenset({"R"})))
    batch_count = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 100))
    return graph, batch_count, seed


class TestBatchInvariants:
    @given(data=graphs_and_counts())
    @settings(max_examples=60, deadline=None)
    def test_union_restores_graph(self, data):
        graph, batch_count, seed = data
        batches = split_into_batches(graph, batch_count, seed)
        merged = reassemble(batches)
        assert set(merged.node_ids()) == set(graph.node_ids())
        assert set(merged.edge_ids()) == set(graph.edge_ids())

    @given(data=graphs_and_counts())
    @settings(max_examples=60, deadline=None)
    def test_edges_partitioned_exactly_once(self, data):
        graph, batch_count, seed = data
        batches = split_into_batches(graph, batch_count, seed)
        seen: list[str] = []
        for batch in batches:
            seen.extend(batch.edge_ids())
        assert sorted(seen) == sorted(graph.edge_ids())

    @given(data=graphs_and_counts())
    @settings(max_examples=60, deadline=None)
    def test_every_batch_is_self_contained(self, data):
        graph, batch_count, seed = data
        for batch in split_into_batches(graph, batch_count, seed):
            for edge in batch.edges():
                assert batch.has_node(edge.source_id)
                assert batch.has_node(edge.target_id)

    @given(data=graphs_and_counts())
    @settings(max_examples=40, deadline=None)
    def test_batch_count_respected(self, data):
        graph, batch_count, seed = data
        batches = split_into_batches(graph, batch_count, seed)
        assert len(batches) == batch_count

    @given(data=graphs_and_counts())
    @settings(max_examples=40, deadline=None)
    def test_elements_keep_their_payload(self, data):
        graph, batch_count, seed = data
        for batch in split_into_batches(graph, batch_count, seed):
            for node in batch.nodes():
                original = graph.node(node.node_id)
                assert node.labels == original.labels
                assert dict(node.properties) == dict(original.properties)

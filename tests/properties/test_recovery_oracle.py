"""Crash-recovery oracle: recover == never crashed, at every boundary.

The durability invariant under test: crash a durable session at *any*
WAL record boundary (or mid-record, leaving a torn tail), recover from
disk, finish the feed, and the schema fingerprint equals an
uninterrupted run of the same feed.  Exhaustive boundary sweeps cover
element-wise, columnar, and sharded (1/2/4 shards) feeds; a
Hypothesis-driven version varies the script, the crash point, and the
checkpoint position.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro.core.config import PGHiveConfig
from repro.core.faults import FaultInjector, SimulatedCrash
from repro.core.recovery import (
    DurableSchemaSession,
    DurableShardedSchemaSession,
)
from repro.core.session import SchemaSession
from repro.core.sharding import ShardedSchemaSession
from repro.graph.changes import ChangeSet
from repro.graph.columnar import BatchBuilder, global_interner
from repro.graph.model import Edge, Node
from repro.schema.model import schema_fingerprint

CONFIG = PGHiveConfig(seed=0, infer_keys=True)

LABELS = ["Person", "Org", "Post"]
KEYS = ["name", "age", "rank"]


def element_insert(round_, width=4):
    nodes = [
        Node(f"n{round_}-{i}", {LABELS[i % len(LABELS)]},
             {"name": f"x{i}", "age": i})
        for i in range(width)
    ]
    edges = [
        Edge(f"e{round_}-{i}", nodes[i].node_id, nodes[i + 1].node_id,
             {"REL"}, {"w": i})
        for i in range(width - 1)
    ]
    return ChangeSet.inserts(nodes, edges)


def columnar_insert(round_, width=4):
    # All columnar change-sets share the process-wide interner: sharded
    # sessions pin one interner per session, and WAL replay decodes
    # against the global one by default.
    interner = global_interner()
    builder = BatchBuilder(interner)
    keys = interner.intern_keys(["age", "name"])
    for i in range(width):
        builder.add_node(
            f"c{round_}-{i}",
            interner.intern_labels([LABELS[i % len(LABELS)]]),
            keys,
            (i, f"y{i}"),
        )
    return ChangeSet.inserts_columnar(builder.freeze())


def mixed_feed():
    """Element inserts, columnar inserts, and deletions interleaved."""
    return [
        element_insert(0),
        columnar_insert(1),
        element_insert(2),
        ChangeSet.deletions(nodes=["n0-1"], edges=["e2-0"]),
        columnar_insert(4),
        element_insert(5),
        ChangeSet.deletions(nodes=["c1-2"]),
        element_insert(7),
    ]


def uncrashed_fingerprint(feed):
    session = SchemaSession(CONFIG, schema_name="s", retain_union=True)
    for change_set in feed:
        session.apply(change_set)
    return schema_fingerprint(session.schema())


def recover_and_finish(directory, feed, sharded=False, n_shards=1):
    cls = DurableShardedSchemaSession if sharded else DurableSchemaSession
    kwargs = {"n_shards": n_shards} if sharded else {}
    session = cls.recover(
        directory,
        config=CONFIG,
        schema_name="s",
        fsync="off",
        retain_union=True,
        **kwargs,
    )
    for change_set in feed[session.sequence:]:
        session.apply(change_set)
    fingerprint = schema_fingerprint(session.schema())
    session.close()
    return fingerprint


class TestEveryBoundary:
    def test_single_session_every_record_boundary(self, tmp_path):
        feed = mixed_feed()
        want = uncrashed_fingerprint(feed)
        for boundary in range(len(feed) + 1):
            directory = tmp_path / f"b{boundary}"
            session = DurableSchemaSession(
                directory, CONFIG, schema_name="s", fsync="off",
                retain_union=True,
            )
            for change_set in feed[:boundary]:
                session.apply(change_set)
            if boundary == 5:
                session.checkpoint()
            del session  # crash at the record boundary
            assert recover_and_finish(directory, feed) == want, (
                f"boundary {boundary}"
            )

    def test_single_session_torn_tail_at_every_record(self, tmp_path):
        feed = mixed_feed()
        want = uncrashed_fingerprint(feed)

        def tear(point, context):
            FaultInjector.truncate_at(
                context["path"], context["record_start"] + 6
            )
            raise SimulatedCrash("torn")

        for victim in range(len(feed)):
            directory = tmp_path / f"t{victim}"
            session = DurableSchemaSession(
                directory, CONFIG, schema_name="s", fsync="off",
                retain_union=True,
            )
            with FaultInjector() as injector:
                injector.arm("wal.after_append", tear, after=victim)
                with pytest.raises(SimulatedCrash):
                    for change_set in feed:
                        session.apply(change_set)
            recovered = DurableSchemaSession.recover(
                directory,
                config=CONFIG,
                schema_name="s",
                fsync="off",
                retain_union=True,
            )
            # The torn record vanished: recovery lands exactly before it.
            assert recovered.sequence == victim
            for change_set in feed[recovered.sequence:]:
                recovered.apply(change_set)
            assert schema_fingerprint(recovered.schema()) == want, (
                f"victim {victim}"
            )
            recovered.close()

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_sharded_every_record_boundary(self, tmp_path, n_shards):
        feed = mixed_feed()
        want = uncrashed_fingerprint(feed)
        for boundary in range(len(feed) + 1):
            directory = tmp_path / f"s{n_shards}-{boundary}"
            session = DurableShardedSchemaSession(
                directory,
                CONFIG,
                schema_name="s",
                n_shards=n_shards,
                fsync="off",
                retain_union=True,
            )
            for change_set in feed[:boundary]:
                session.apply(change_set)
            if boundary == 4:
                session.checkpoint()
            del session
            got = recover_and_finish(
                directory, feed, sharded=True, n_shards=n_shards
            )
            assert got == want, f"shards {n_shards}, boundary {boundary}"


@st.composite
def crash_scripts(draw):
    """A feed plus a crash boundary and an optional checkpoint position."""
    feed = []
    serial = 0
    inserted_nodes = []
    for _ in range(draw(st.integers(3, 6))):
        kind = draw(st.sampled_from(["elements", "columnar", "delete"]))
        if kind == "delete" and not inserted_nodes:
            kind = "elements"
        serial += 1
        if kind == "elements":
            change_set = element_insert(
                f"h{serial}", width=draw(st.integers(2, 4))
            )
            inserted_nodes.extend(n.node_id for n in change_set.nodes)
            feed.append(change_set)
        elif kind == "columnar":
            change_set = columnar_insert(
                f"h{serial}", width=draw(st.integers(2, 4))
            )
            inserted_nodes.extend(change_set.columnar.nodes.ids)
            feed.append(change_set)
        else:
            index = draw(st.integers(0, len(inserted_nodes) - 1))
            feed.append(
                ChangeSet.deletions(nodes=[inserted_nodes[index]])
            )
    crash_at = draw(st.integers(0, len(feed)))
    checkpoint_at = draw(
        st.one_of(st.none(), st.integers(1, max(1, crash_at)))
    )
    return feed, crash_at, checkpoint_at


class TestHypothesisOracle:
    @given(script=crash_scripts())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_recovery_matches_uncrashed(self, script, tmp_path_factory):
        feed, crash_at, checkpoint_at = script
        want = uncrashed_fingerprint(feed)
        directory = tmp_path_factory.mktemp("oracle") / "sess"
        session = DurableSchemaSession(
            directory, CONFIG, schema_name="s", fsync="off", retain_union=True
        )
        for index, change_set in enumerate(feed[:crash_at]):
            session.apply(change_set)
            if checkpoint_at is not None and index + 1 == checkpoint_at:
                session.checkpoint()
        del session
        assert recover_and_finish(directory, feed) == want


class TestShardedMatchesSingle:
    """Recovered sharded feeds agree with the plain sharded session too."""

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_three_surfaces_agree(self, tmp_path, n_shards):
        feed = mixed_feed()
        want = uncrashed_fingerprint(feed)

        sharded = ShardedSchemaSession(
            CONFIG, schema_name="s", n_shards=n_shards, retain_union=True
        )
        for change_set in feed:
            sharded.apply(change_set)
        assert schema_fingerprint(sharded.schema()) == want

        directory = tmp_path / "durable"
        durable = DurableShardedSchemaSession(
            directory,
            CONFIG,
            schema_name="s",
            n_shards=n_shards,
            fsync="off",
            retain_union=True,
        )
        for change_set in feed[:4]:
            durable.apply(change_set)
        del durable
        got = recover_and_finish(
            directory, feed, sharded=True, n_shards=n_shards
        )
        assert got == want

"""Unit tests for the LSH clustering step (section 4.2)."""

import pytest

from repro.core.clustering import cluster_features
from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.preprocess import Preprocessor


@pytest.fixture
def features(figure1_graph):
    preprocessor = Preprocessor(PGHiveConfig(seed=2)).fit(figure1_graph)
    return (
        preprocessor.node_features(figure1_graph),
        preprocessor.edge_features(figure1_graph),
    )


class TestClusterFeatures:
    @pytest.mark.parametrize("method", list(ClusteringMethod))
    def test_clusters_partition_elements(self, features, method):
        node_features, _ = features
        outcome = cluster_features(
            node_features, PGHiveConfig(method=method, seed=2), "nodes"
        )
        member_ids = [m for c in outcome.clusters for m in c.member_ids]
        assert sorted(member_ids) == sorted(
            r.element_id for r in node_features.records
        )

    @pytest.mark.parametrize("method", list(ClusteringMethod))
    def test_no_cross_label_mixing_on_clean_data(self, features, method):
        node_features, _ = features
        outcome = cluster_features(
            node_features, PGHiveConfig(method=method, seed=2), "nodes"
        )
        for cluster in outcome.clusters:
            # Labeled members of one cluster agree on their label set.
            labeled = [
                r
                for r in node_features.records
                if r.element_id in cluster.member_ids and r.labels
            ]
            assert len({r.token for r in labeled}) <= 1

    def test_representative_pattern_unions(self, features):
        node_features, _ = features
        outcome = cluster_features(node_features, PGHiveConfig(seed=2), "nodes")
        person_cluster = next(
            c for c in outcome.clusters if "bob" in c.member_ids
        )
        assert person_cluster.labels == {"Person"}
        assert person_cluster.property_keys == {"name", "gender", "bday"}

    def test_edge_clusters_track_endpoints(self, features):
        _, edge_features = features
        outcome = cluster_features(edge_features, PGHiveConfig(seed=2), "edges")
        works_at = next(
            c for c in outcome.clusters if "e5" in c.member_ids
        )
        assert works_at.source_tokens == {"Person"}
        assert works_at.target_tokens == {"Org."}

    def test_parameters_reported(self, features):
        node_features, _ = features
        outcome = cluster_features(node_features, PGHiveConfig(seed=2), "nodes")
        assert outcome.parameters is not None
        assert outcome.parameters.element_count == len(node_features)

    def test_empty_features(self, figure1_graph):
        from repro.graph.model import PropertyGraph

        empty = PropertyGraph()
        preprocessor = Preprocessor(PGHiveConfig(seed=2)).fit(figure1_graph)
        features = preprocessor.node_features(empty)
        outcome = cluster_features(features, PGHiveConfig(seed=2), "nodes")
        assert outcome.clusters == []
        assert outcome.parameters is None

    def test_member_property_keys_parallel_members(self, features):
        node_features, _ = features
        outcome = cluster_features(node_features, PGHiveConfig(seed=2), "nodes")
        for cluster in outcome.clusters:
            assert len(cluster.member_property_keys) == cluster.size

    def test_manual_overrides_respected(self, features):
        from repro.core.config import AdaptiveOverrides

        node_features, _ = features
        config = PGHiveConfig(
            seed=2, node_lsh=AdaptiveOverrides(bucket_length=5.0, num_tables=3)
        )
        outcome = cluster_features(node_features, config, "nodes")
        assert outcome.parameters.bucket_length == 5.0
        assert outcome.parameters.num_tables == 3

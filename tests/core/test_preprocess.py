"""Unit tests for representation vectors (section 4.1, Example 3)."""

import numpy as np
import pytest

from repro.core.config import PGHiveConfig
from repro.core.preprocess import Preprocessor


@pytest.fixture
def preprocessor(figure1_graph) -> Preprocessor:
    return Preprocessor(PGHiveConfig(embedding_dim=8, seed=1)).fit(figure1_graph)


class TestNodeFeatures:
    def test_vector_dimension_is_d_plus_K(self, preprocessor, figure1_graph):
        features = preprocessor.node_features(figure1_graph)
        distinct_keys = len(figure1_graph.all_node_property_keys())
        assert features.vectors.shape == (7, 8 + distinct_keys)

    def test_binary_block_flags_present_properties(
        self, preprocessor, figure1_graph
    ):
        features = preprocessor.node_features(figure1_graph)
        keys = features.property_keys
        row = [r.element_id for r in features.records].index("bob")
        binary = features.vectors[row, 8:]
        for position, key in enumerate(keys):
            expected = 1.0 if key in {"name", "gender", "bday"} else 0.0
            assert binary[position] == expected

    def test_unlabeled_node_has_zero_embedding(self, preprocessor, figure1_graph):
        features = preprocessor.node_features(figure1_graph)
        row = [r.element_id for r in features.records].index("alice")
        assert np.allclose(features.vectors[row, :8], 0.0)

    def test_same_token_same_embedding(self, preprocessor, figure1_graph):
        features = preprocessor.node_features(figure1_graph)
        ids = [r.element_id for r in features.records]
        bob, john = ids.index("bob"), ids.index("john")
        assert np.allclose(
            features.vectors[bob, :8], features.vectors[john, :8]
        )

    def test_embedding_scaled_to_label_weight(self, figure1_graph):
        config = PGHiveConfig(embedding_dim=8, label_weight=3.0, seed=1)
        features = Preprocessor(config).fit(figure1_graph).node_features(
            figure1_graph
        )
        row = [r.element_id for r in features.records].index("bob")
        assert np.linalg.norm(features.vectors[row, :8]) == pytest.approx(3.0)

    def test_distinct_tokens_separated(self, preprocessor, figure1_graph):
        features = preprocessor.node_features(figure1_graph)
        ids = [r.element_id for r in features.records]
        post = features.vectors[ids.index("post1"), :8]
        org = features.vectors[ids.index("org"), :8]
        assert np.linalg.norm(post - org) > 0.5

    def test_token_sets_include_label_and_keys(self, preprocessor, figure1_graph):
        features = preprocessor.node_features(figure1_graph)
        ids = [r.element_id for r in features.records]
        bob_tokens = features.token_sets[ids.index("bob")]
        assert "label:Person" in bob_tokens
        assert {"name", "gender", "bday"} <= set(bob_tokens)
        alice_tokens = features.token_sets[ids.index("alice")]
        assert not any(t.startswith("label:") for t in alice_tokens)


class TestEdgeFeatures:
    def test_vector_dimension_is_3d_plus_Q(self, preprocessor, figure1_graph):
        features = preprocessor.edge_features(figure1_graph)
        assert features.vectors.shape == (7, 3 * 8 + 2)  # keys: from, since

    def test_three_embedding_blocks(self, preprocessor, figure1_graph):
        features = preprocessor.edge_features(figure1_graph)
        ids = [r.element_id for r in features.records]
        row = ids.index("e5")  # WORKS_AT bob->org
        edge_block = features.vectors[row, :8]
        source_block = features.vectors[row, 8:16]
        target_block = features.vectors[row, 16:24]
        assert np.linalg.norm(edge_block) > 0
        assert np.linalg.norm(source_block) > 0
        assert np.linalg.norm(target_block) > 0
        assert not np.allclose(source_block, target_block)

    def test_unlabeled_source_zero_block(self, preprocessor, figure1_graph):
        features = preprocessor.edge_features(figure1_graph)
        ids = [r.element_id for r in features.records]
        row = ids.index("e1")  # KNOWS alice->john, alice unlabeled
        assert np.allclose(features.vectors[row, 8:16], 0.0)

    def test_records_carry_endpoint_tokens(self, preprocessor, figure1_graph):
        features = preprocessor.edge_features(figure1_graph)
        record = next(r for r in features.records if r.element_id == "e5")
        assert record.source_token == "Person"
        assert record.target_token == "Org."

    def test_edge_token_sets_role_tagged(self, preprocessor, figure1_graph):
        features = preprocessor.edge_features(figure1_graph)
        ids = [r.element_id for r in features.records]
        tokens = features.token_sets[ids.index("e5")]
        assert "label:WORKS_AT" in tokens
        assert "src:Person" in tokens
        assert "tgt:Org." in tokens
        assert "from" in tokens


class TestLifecycle:
    def test_transform_before_fit_raises(self, figure1_graph):
        preprocessor = Preprocessor(PGHiveConfig())
        with pytest.raises(RuntimeError):
            preprocessor.node_features(figure1_graph)

"""Crash-recovery tests for durable sessions.

The acceptance bar (mirrors the crash-recovery oracle): recover ==
newest valid checkpoint + WAL replay, and a recovered session finishing
the feed is fingerprint-identical to one that never crashed.  Corrupt
checkpoints fall back to older ones; only when *every* checkpoint fails
does recovery raise (never a silent restart from scratch).
"""

import pytest

from repro.core.config import PGHiveConfig
from repro.core.durability import WriteAheadLog
from repro.core.faults import FaultInjector, SimulatedCrash
from repro.core.recovery import (
    DurableSchemaSession,
    DurableShardedSchemaSession,
)
from repro.core.session import SchemaSession
from repro.core.sharding import ShardedSchemaSession
from repro.errors import CheckpointError, ConfigurationError
from repro.graph.batching import split_into_batches
from repro.graph.changes import ChangeSet
from repro.graph.columnar import BatchBuilder, Interner
from repro.graph.model import Edge, Node
from repro.schema.model import schema_fingerprint

CONFIG = PGHiveConfig(seed=0, infer_keys=True)


def change_feed(rounds=8):
    """A deterministic feed of insert and delete change-sets."""
    feed = []
    for round_ in range(rounds):
        nodes = [
            Node(
                f"n{round_}-{i}",
                {"Person" if i % 2 else "City"},
                {"p": i, "tag": f"t{round_}"},
            )
            for i in range(5)
        ]
        edges = [
            Edge(f"e{round_}-{i}", nodes[i].node_id, nodes[i + 1].node_id,
                 {"KNOWS"}, {"w": i})
            for i in range(4)
        ]
        feed.append(ChangeSet.inserts(nodes, edges))
        if round_ == 5:
            feed.append(ChangeSet.deletions(nodes=["n1-0"], edges=["e2-1"]))
    return feed


def columnar_feed(rounds=4):
    feed = []
    for round_ in range(rounds):
        interner = Interner()
        builder = BatchBuilder(interner)
        labels = interner.intern_labels(["Item"])
        keys = interner.intern_keys(["rank"])
        for i in range(4):
            builder.add_node(f"c{round_}-{i}", labels, keys, (i,))
        feed.append(ChangeSet.inserts_columnar(builder.freeze()))
    return feed


def oracle_fingerprint(feed):
    session = SchemaSession(CONFIG, schema_name="s", retain_union=True)
    for change_set in feed:
        session.apply(change_set)
    return schema_fingerprint(session.schema())


class TestDurableSchemaSession:
    def test_recover_after_crash_matches_uncrashed(self, tmp_path):
        feed = change_feed()
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory, CONFIG, schema_name="s", fsync="off", retain_union=True
        )
        for change_set in feed[:3]:
            session.apply(change_set)
        session.checkpoint()
        for change_set in feed[3:6]:
            session.apply(change_set)
        del session  # crash: no close, no final checkpoint

        recovered = SchemaSession.recover(directory, fsync="off")
        assert isinstance(recovered, DurableSchemaSession)
        assert recovered.sequence == 6
        for change_set in feed[recovered.sequence:]:
            recovered.apply(change_set)
        assert schema_fingerprint(recovered.schema()) == oracle_fingerprint(feed)

    def test_recover_without_any_checkpoint_replays_whole_wal(self, tmp_path):
        feed = change_feed()
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory, CONFIG, schema_name="s", fsync="off", retain_union=True
        )
        for change_set in feed:
            session.apply(change_set)
        del session
        recovered = DurableSchemaSession.recover(
            directory,
            config=CONFIG,
            schema_name="s",
            fsync="off",
            retain_union=True,
        )
        assert recovered.sequence == len(feed)
        assert schema_fingerprint(recovered.schema()) == oracle_fingerprint(feed)

    def test_recovered_session_keeps_logging(self, tmp_path):
        feed = change_feed()
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory, CONFIG, schema_name="s", fsync="off", retain_union=True
        )
        for change_set in feed[:4]:
            session.apply(change_set)
        del session
        first = DurableSchemaSession.recover(
            directory, config=CONFIG, schema_name="s", fsync="off",
            retain_union=True,
        )
        for change_set in feed[4:7]:
            first.apply(change_set)
        del first  # crash again
        second = DurableSchemaSession.recover(
            directory, config=CONFIG, schema_name="s", fsync="off",
            retain_union=True,
        )
        assert second.sequence == 7
        for change_set in feed[7:]:
            second.apply(change_set)
        assert schema_fingerprint(second.schema()) == oracle_fingerprint(feed)

    def test_batch_feed_recovers(self, figure1_graph, tmp_path):
        batches = split_into_batches(figure1_graph, 4, seed=4)
        oracle = SchemaSession(CONFIG, schema_name="s", retain_union=True)
        for batch in batches:
            oracle.add_batch(batch)

        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory, CONFIG, schema_name="s", fsync="off", retain_union=True
        )
        for batch in batches[:2]:
            session.add_batch(batch)
        del session
        recovered = DurableSchemaSession.recover(
            directory, config=CONFIG, schema_name="s", fsync="off",
            retain_union=True,
        )
        assert recovered.sequence == 2
        for batch in batches[2:]:
            recovered.add_batch(batch)
        assert schema_fingerprint(recovered.schema()) == schema_fingerprint(
            oracle.schema()
        )

    def test_columnar_feed_recovers(self, tmp_path):
        feed = columnar_feed()
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory, CONFIG, schema_name="s", fsync="off", retain_union=True
        )
        for change_set in feed[:2]:
            session.apply(change_set)
        del session
        recovered = DurableSchemaSession.recover(
            directory, config=CONFIG, schema_name="s", fsync="off",
            retain_union=True,
        )
        assert recovered.sequence == 2
        for change_set in feed[2:]:
            recovered.apply(change_set)
        assert schema_fingerprint(recovered.schema()) == oracle_fingerprint(feed)

    def test_torn_final_record_is_dropped(self, tmp_path):
        feed = change_feed()
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory, CONFIG, schema_name="s", fsync="off", retain_union=True
        )

        def tear(point, context):
            FaultInjector.truncate_at(
                context["path"], context["record_start"] + 5
            )
            raise SimulatedCrash("torn mid-record")

        for index, change_set in enumerate(feed):
            if index == 4:
                with FaultInjector() as injector:
                    injector.arm("wal.after_append", tear)
                    with pytest.raises(SimulatedCrash):
                        session.apply(change_set)
                break
            session.apply(change_set)

        recovered = DurableSchemaSession.recover(
            directory, config=CONFIG, schema_name="s", fsync="off",
            retain_union=True,
        )
        # The torn record was never acknowledged; the producer re-feeds it.
        assert recovered.sequence == 4
        for change_set in feed[recovered.sequence:]:
            recovered.apply(change_set)
        assert schema_fingerprint(recovered.schema()) == oracle_fingerprint(feed)

    def test_refuses_fresh_construction_over_durable_state(self, tmp_path):
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory, CONFIG, schema_name="s", fsync="off", retain_union=True
        )
        session.apply(change_feed()[0])
        session.close()
        with pytest.raises(ConfigurationError, match="recover"):
            DurableSchemaSession(directory, CONFIG, schema_name="s")

    def test_recover_missing_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="no such directory"):
            DurableSchemaSession.recover(tmp_path / "absent")


class TestCheckpointFallbackAndRetention:
    def build(self, tmp_path, keep=3):
        feed = change_feed()
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory,
            CONFIG,
            schema_name="s",
            fsync="off",
            keep_checkpoints=keep,
            retain_union=True,
        )
        for index, change_set in enumerate(feed):
            session.apply(change_set)
            if index in (2, 5):
                session.checkpoint()
        session.close()
        return directory, feed

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        directory, feed = self.build(tmp_path)
        checkpoints = sorted(directory.glob("checkpoint-*.ckpt"))
        assert len(checkpoints) == 2
        FaultInjector.corrupt_byte(checkpoints[-1], 120)
        recovered = DurableSchemaSession.recover(directory, fsync="off")
        # Restored from the older snapshot, then replayed deeper WAL.
        assert recovered.sequence == len(feed)
        assert schema_fingerprint(recovered.schema()) == oracle_fingerprint(feed)

    def test_all_checkpoints_corrupt_raises(self, tmp_path):
        directory, _feed = self.build(tmp_path)
        for checkpoint in directory.glob("checkpoint-*.ckpt"):
            FaultInjector.corrupt_byte(checkpoint, 120)
        with pytest.raises(CheckpointError, match="no checkpoint"):
            DurableSchemaSession.recover(directory, fsync="off")

    def test_retention_bound_holds(self, tmp_path):
        feed = change_feed()
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory,
            CONFIG,
            schema_name="s",
            fsync="off",
            keep_checkpoints=2,
            retain_union=True,
        )
        for change_set in feed:
            session.apply(change_set)
            session.checkpoint()
        checkpoints = sorted(directory.glob("checkpoint-*.ckpt"))
        assert len(checkpoints) == 2
        # Newest two sequences survive.
        assert checkpoints[-1].name == f"checkpoint-{len(feed):012d}.ckpt"
        session.close()

    def test_wal_segments_are_pruned_by_checkpoints(self, tmp_path):
        feed = change_feed(rounds=16)
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory,
            CONFIG,
            schema_name="s",
            fsync="off",
            wal_segment_bytes=384,
            keep_checkpoints=1,
            retain_union=True,
        )
        for change_set in feed[: len(feed) // 2]:
            session.apply(change_set)
        grown = len(session.wal.segment_paths())
        assert grown > 1
        session.checkpoint()
        assert len(session.wal.segment_paths()) < grown
        for change_set in feed[len(feed) // 2:]:
            session.apply(change_set)
        session.checkpoint()
        # With a single retained checkpoint at the head, at most the
        # live segment plus rotation slack survives.
        assert len(session.wal.segment_paths()) <= 2
        session.close()

    def test_wal_retained_back_to_oldest_checkpoint(self, tmp_path):
        """Pruning must honour the *oldest* retained checkpoint.

        With keep_checkpoints=2, recovery may fall back past a corrupt
        newest snapshot, so every record after the older one has to stay
        replayable even across segment rotation.
        """
        feed = change_feed(rounds=16)
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory,
            CONFIG,
            schema_name="s",
            fsync="off",
            wal_segment_bytes=384,
            keep_checkpoints=2,
            retain_union=True,
        )
        first_at, second_at = 5, 11
        for index, change_set in enumerate(feed):
            session.apply(change_set)
            if index in (first_at, second_at):
                session.checkpoint()
        session.wal.sync()
        replayed = [
            sequence for sequence, _ in session.wal.replay(after=first_at + 1)
        ]
        assert replayed == list(range(first_at + 2, len(feed) + 1))
        session.close()

    def test_corrupt_newest_falls_back_across_pruned_segments(self, tmp_path):
        """Regression: pruning to the newest checkpoint used to leave a
        replay gap when the fallback needed records behind it."""
        feed = change_feed(rounds=16)
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory,
            CONFIG,
            schema_name="s",
            fsync="off",
            wal_segment_bytes=384,
            keep_checkpoints=2,
            retain_union=True,
        )
        for index, change_set in enumerate(feed):
            session.apply(change_set)
            if index in (5, 11):
                session.checkpoint()
        session.close()
        assert len(session.wal.segment_paths()) > 1
        checkpoints = sorted(directory.glob("checkpoint-*.ckpt"))
        assert len(checkpoints) == 2
        FaultInjector.corrupt_byte(checkpoints[-1], 120)
        recovered = DurableSchemaSession.recover(directory, fsync="off")
        assert recovered.sequence == len(feed)
        assert schema_fingerprint(recovered.schema()) == oracle_fingerprint(feed)

    def test_external_checkpoint_is_portable_and_prunes_nothing(
        self, tmp_path
    ):
        feed = change_feed()
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory, CONFIG, schema_name="s", fsync="off", retain_union=True
        )
        for change_set in feed[:4]:
            session.apply(change_set)
        external = session.checkpoint(tmp_path / "export.ckpt")
        assert external == tmp_path / "export.ckpt"
        assert not list(directory.glob("checkpoint-*.ckpt"))
        restored = SchemaSession.restore(external)
        assert restored.sequence == 4
        session.close()


class TestRejectedChangeSets:
    """A change-set the session refuses must never persist in the WAL."""

    def test_rejected_apply_rolls_back_the_wal_record(self, tmp_path):
        feed = change_feed()
        directory = tmp_path / "sess"
        # No retained union graph: deletions are a validation error.
        session = DurableSchemaSession(
            directory, CONFIG, schema_name="s", fsync="off"
        )
        session.apply(feed[0])
        with pytest.raises(ConfigurationError, match="retain_union"):
            session.apply(ChangeSet.deletions(nodes=["n0-0"]))
        assert session.sequence == 1
        assert session.wal.last_sequence == 1
        # The session is still usable: the next apply logs sequence 2
        # instead of tripping the strictly-increasing check.
        session.apply(feed[1])
        session.close()
        recovered = DurableSchemaSession.recover(
            directory, config=CONFIG, schema_name="s", fsync="off"
        )
        assert recovered.sequence == 2
        assert schema_fingerprint(recovered.schema()) == schema_fingerprint(
            _insert_only_oracle(feed[:2]).schema()
        )

    def test_rejected_sharded_apply_rolls_back_the_wal_record(self, tmp_path):
        feed = change_feed()
        directory = tmp_path / "shard"
        session = DurableShardedSchemaSession(
            directory, CONFIG, schema_name="s", n_shards=2, fsync="off"
        )
        session.apply(feed[0])
        with pytest.raises(ConfigurationError, match="retain_union"):
            session.apply(ChangeSet.deletions(nodes=["n0-0"]))
        assert session.sequence == 1
        assert session.wal.last_sequence == 1
        session.apply(feed[1])
        session.close()
        recovered = DurableShardedSchemaSession.recover(
            directory, config=CONFIG, schema_name="s", n_shards=2, fsync="off"
        )
        assert recovered.sequence == 2
        recovered.close()

    def test_poisoned_tail_record_is_dropped_on_recovery(self, tmp_path):
        """Crash between the WAL append and the rejection rollback.

        The rejected change-set is then the (never acknowledged) final
        record of the log; recovery drops it instead of replaying the
        rejection forever.
        """
        feed = change_feed()
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory, CONFIG, schema_name="s", fsync="off"
        )
        session.apply(feed[0])
        session.apply(feed[1])
        session.close()
        log = WriteAheadLog(directory / "wal", fsync="off")
        log.append(3, b"C" + ChangeSet.deletions(nodes=["n0-0"]).to_wire())
        log.close()
        recovered = DurableSchemaSession.recover(
            directory, config=CONFIG, schema_name="s", fsync="off"
        )
        assert recovered.sequence == 2
        assert recovered.wal.last_sequence == 2
        # Logging resumes cleanly where the poisoned record was dropped.
        recovered.apply(feed[2])
        assert recovered.sequence == 3
        recovered.close()

    def test_mid_log_rejection_still_raises(self, tmp_path):
        """A rejected record *followed by later records* is divergence,
        not an unacknowledged tail -- recovery must not drop it."""
        feed = change_feed()
        directory = tmp_path / "sess"
        session = DurableSchemaSession(
            directory, CONFIG, schema_name="s", fsync="off"
        )
        session.apply(feed[0])
        session.close()
        log = WriteAheadLog(directory / "wal", fsync="off")
        log.append(2, b"C" + ChangeSet.deletions(nodes=["n0-0"]).to_wire())
        log.append(3, b"C" + feed[1].to_wire())
        log.close()
        with pytest.raises(ConfigurationError, match="retain_union"):
            DurableSchemaSession.recover(
                directory, config=CONFIG, schema_name="s", fsync="off"
            )


def _insert_only_oracle(feed):
    session = SchemaSession(CONFIG, schema_name="s")
    for change_set in feed:
        session.apply(change_set)
    return session


class TestDurableShardedSession:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_recover_matches_uncrashed(self, tmp_path, n_shards):
        feed = change_feed()
        directory = tmp_path / f"shard{n_shards}"
        session = DurableShardedSchemaSession(
            directory,
            CONFIG,
            schema_name="s",
            n_shards=n_shards,
            fsync="off",
            retain_union=True,
        )
        for change_set in feed[:3]:
            session.apply(change_set)
        session.checkpoint()
        for change_set in feed[3:6]:
            session.apply(change_set)
        session.close()  # crash after close is the easy case; still a restart

        recovered = DurableShardedSchemaSession.recover(directory, fsync="off")
        assert recovered.sequence == 6
        assert recovered.n_shards == n_shards
        for change_set in feed[recovered.sequence:]:
            recovered.apply(change_set)
        assert schema_fingerprint(recovered.schema()) == oracle_fingerprint(feed)
        recovered.close()

    def test_parallel_recover_matches_serial_oracle(self, tmp_path):
        feed = change_feed()
        directory = tmp_path / "par"
        session = DurableShardedSchemaSession(
            directory,
            CONFIG,
            schema_name="s",
            n_shards=2,
            parallel=True,
            fsync="off",
            retain_union=True,
        )
        try:
            for change_set in feed[:3]:
                session.apply(change_set)
            session.checkpoint()
            for change_set in feed[3:5]:
                session.apply(change_set)
        finally:
            session.close()

        recovered = DurableShardedSchemaSession.recover(
            directory, parallel=True, fsync="off"
        )
        try:
            assert recovered.parallel
            assert recovered.sequence == 5
            for change_set in feed[recovered.sequence:]:
                recovered.apply(change_set)
            assert schema_fingerprint(recovered.schema()) == oracle_fingerprint(
                feed
            )
        finally:
            recovered.close()

    def test_manifest_retention_and_refusal(self, tmp_path):
        directory = tmp_path / "shard"
        session = DurableShardedSchemaSession(
            directory,
            CONFIG,
            schema_name="s",
            n_shards=2,
            fsync="off",
            keep_checkpoints=1,
        )
        feed = change_feed()
        for index, change_set in enumerate(feed[:4]):
            session.apply(change_set)
            session.checkpoint()
        manifests = [
            path
            for path in directory.iterdir()
            if path.is_dir() and path.name.startswith("checkpoint-")
        ]
        assert len(manifests) == 1
        session.close()
        with pytest.raises(ConfigurationError, match="recover"):
            DurableShardedSchemaSession(directory, CONFIG, n_shards=2)

    def test_corrupt_newest_manifest_falls_back_across_pruned_segments(
        self, tmp_path
    ):
        feed = change_feed(rounds=16)
        directory = tmp_path / "shard"
        session = DurableShardedSchemaSession(
            directory,
            CONFIG,
            schema_name="s",
            n_shards=2,
            fsync="off",
            wal_segment_bytes=384,
            keep_checkpoints=2,
            retain_union=True,
        )
        for index, change_set in enumerate(feed):
            session.apply(change_set)
            if index in (5, 11):
                session.checkpoint()
        session.close()
        manifests = sorted(
            path
            for path in directory.iterdir()
            if path.is_dir() and path.name.startswith("checkpoint-")
        )
        assert len(manifests) == 2
        FaultInjector.corrupt_byte(manifests[-1] / "manifest.ckpt", 60)
        recovered = DurableShardedSchemaSession.recover(directory, fsync="off")
        assert recovered.sequence == len(feed)
        assert schema_fingerprint(recovered.schema()) == oracle_fingerprint(feed)
        recovered.close()

    def test_sharded_restore_oracle_equivalence(self, tmp_path):
        """Recovered sharded session == plain sharded session == single."""
        feed = change_feed()
        directory = tmp_path / "shard"
        session = DurableShardedSchemaSession(
            directory,
            CONFIG,
            schema_name="s",
            n_shards=4,
            fsync="off",
            retain_union=True,
        )
        for change_set in feed[:5]:
            session.apply(change_set)
        session.close()
        recovered = DurableShardedSchemaSession.recover(
            directory, config=CONFIG, schema_name="s", n_shards=4,
            fsync="off", retain_union=True,
        )
        for change_set in feed[5:]:
            recovered.apply(change_set)

        sharded = ShardedSchemaSession(
            CONFIG, schema_name="s", n_shards=4, retain_union=True
        )
        for change_set in feed:
            sharded.apply(change_set)

        want = oracle_fingerprint(feed)
        assert schema_fingerprint(recovered.schema()) == want
        assert schema_fingerprint(sharded.schema()) == want
        recovered.close()

"""Unit tests for key-constraint inference (PG-Keys extension)."""

from repro.core.config import PGHiveConfig
from repro.core.key_inference import (
    candidate_keys_for_type,
    infer_keys,
    to_pg_keys,
)
from repro.core.pipeline import PGHive
from repro.graph.model import Node, PropertyGraph
from repro.schema.model import NodeType, SchemaGraph


def graph_of(rows):
    """rows: {node_id: properties}; single 'T'-labelled type."""
    graph = PropertyGraph()
    node_type = NodeType("n0", {"T"})
    for node_id, properties in rows.items():
        graph.add_node(Node(node_id, {"T"}, properties))
        node_type.record_instance(node_id, properties.keys())
    schema = SchemaGraph()
    schema.add_node_type(node_type)
    from repro.core.constraints import infer_property_constraints

    infer_property_constraints(schema)
    return graph, schema, node_type


class TestSingletonKeys:
    def test_unique_mandatory_property_is_key(self):
        graph, _, node_type = graph_of(
            {"a": {"id": 1, "city": "x"}, "b": {"id": 2, "city": "x"}}
        )
        keys = candidate_keys_for_type(graph, node_type, is_edge=False)
        assert ("id",) in keys
        assert ("city",) not in keys

    def test_optional_property_never_a_key(self):
        graph, _, node_type = graph_of(
            {"a": {"id": 1, "rare": 9}, "b": {"id": 2}}
        )
        keys = candidate_keys_for_type(graph, node_type, is_edge=False)
        assert ("rare",) not in keys

    def test_duplicated_values_not_a_key(self):
        graph, _, node_type = graph_of({"a": {"v": 1}, "b": {"v": 1}})
        assert candidate_keys_for_type(graph, node_type, is_edge=False) == []

    def test_single_instance_type_claims_nothing(self):
        graph, _, node_type = graph_of({"a": {"id": 1}})
        assert candidate_keys_for_type(graph, node_type, is_edge=False) == []


class TestCompositeKeys:
    def test_pair_key_found_when_no_singleton(self):
        graph, _, node_type = graph_of(
            {
                "a": {"row": 1, "col": 1},
                "b": {"row": 1, "col": 2},
                "c": {"row": 2, "col": 1},
            }
        )
        keys = candidate_keys_for_type(graph, node_type, is_edge=False)
        assert ("col", "row") in keys or ("row", "col") in keys
        assert all(len(k) == 2 for k in keys)

    def test_no_composite_when_duplicate_pairs(self):
        graph, _, node_type = graph_of(
            {"a": {"row": 1, "col": 1}, "b": {"row": 1, "col": 1}}
        )
        assert candidate_keys_for_type(graph, node_type, is_edge=False) == []


class TestInferKeysOverSchema:
    def test_unique_flag_set(self):
        graph, schema, node_type = graph_of(
            {"a": {"id": 1, "v": 5}, "b": {"id": 2, "v": 5}}
        )
        infer_keys(schema, graph)
        assert node_type.properties["id"].unique is True
        assert node_type.candidate_keys == [("id",)]

    def test_pipeline_flag(self, figure1_graph):
        config = PGHiveConfig(seed=0, infer_keys=True)
        result = PGHive(config).discover(figure1_graph)
        person = result.schema.node_type_by_token("Person")
        # name is unique across bob/alice/john.
        assert ("name",) in person.candidate_keys

    def test_pipeline_flag_off_by_default(self, figure1_graph):
        result = PGHive(PGHiveConfig(seed=0)).discover(figure1_graph)
        person = result.schema.node_type_by_token("Person")
        assert person.candidate_keys == []


class TestPGKeysSerialisation:
    def test_statements_rendered(self, figure1_graph):
        config = PGHiveConfig(seed=0, infer_keys=True)
        result = PGHive(config).discover(figure1_graph)
        text = to_pg_keys(result.schema)
        assert "FOR (x:Person) EXCLUSIVE MANDATORY SINGLETON x.name" in text

    def test_empty_schema(self):
        assert to_pg_keys(SchemaGraph()) == ""

    def test_merge_resets_uniqueness(self):
        graph, schema, node_type = graph_of(
            {"a": {"id": 1}, "b": {"id": 2}}
        )
        infer_keys(schema, graph)
        other = NodeType("n1", {"T"})
        other.record_instance("c", {"id"})
        node_type.absorb(other)
        assert node_type.candidate_keys == []
        assert node_type.properties["id"].unique is None

"""Unit tests for the durability primitives: artifacts, WAL, failpoints.

The WAL contract under test: strictly-increasing sequences, checksummed
records, rotation at the segment budget, torn-tail tolerance at the last
segment only, and pruning that never deletes a record a recovery after
the checkpoint could still need.
"""

import pytest

from repro.core.durability import (
    WriteAheadLog,
    atomic_write_bytes,
    payload_digest,
    read_artifact,
    write_artifact,
)
from repro.core.faults import FaultInjector, SimulatedCrash
from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointFormatError,
    CheckpointVersionError,
    ConfigurationError,
    WALCorruptError,
    WALError,
)

MAGIC = b"pghive-test"


def fill(log, first, last, payload=b"x" * 40):
    for sequence in range(first, last + 1):
        log.append(sequence, payload)


class TestAtomicArtifacts:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "artifact.bin"
        write_artifact(path, MAGIC, 3, b"payload bytes")
        assert read_artifact(path, MAGIC, version=3) == (3, b"payload bytes")

    def test_header_carries_digest_and_length(self, tmp_path):
        path = write_artifact(tmp_path / "a.bin", MAGIC, 1, b"abc")
        header = path.read_bytes().split(b"\n", 1)[0]
        magic, version, digest, length = header.split()
        assert magic == MAGIC
        assert digest.decode() == payload_digest(b"abc")
        assert int(length) == 3

    def test_typed_errors(self, tmp_path):
        path = tmp_path / "a.bin"
        path.write_bytes(b"not an artifact\n123")
        with pytest.raises(CheckpointFormatError):
            read_artifact(path, MAGIC, version=1)
        path.write_bytes(b"\x00" * 400)  # no newline in the header window
        with pytest.raises(CheckpointFormatError, match="header"):
            read_artifact(path, MAGIC, version=1)
        write_artifact(path, MAGIC, 9, b"abc")
        with pytest.raises(CheckpointVersionError):
            read_artifact(path, MAGIC, version=1)
        with pytest.raises(CheckpointError):
            read_artifact(tmp_path / "absent.bin", MAGIC, version=1)

    def test_corruption_is_detected(self, tmp_path):
        path = write_artifact(tmp_path / "a.bin", MAGIC, 1, b"sensitive" * 10)
        FaultInjector.corrupt_byte(path, 40)
        with pytest.raises(CheckpointCorruptError):
            read_artifact(path, MAGIC, version=1)

    def test_truncation_is_detected(self, tmp_path):
        path = write_artifact(tmp_path / "a.bin", MAGIC, 1, b"sensitive" * 10)
        FaultInjector.truncate_at(path, path.stat().st_size - 5)
        with pytest.raises(CheckpointCorruptError, match="bytes"):
            read_artifact(path, MAGIC, version=1)

    def test_legacy_two_token_header(self, tmp_path):
        path = tmp_path / "legacy.bin"
        path.write_bytes(MAGIC + b" 1\npayload")
        assert read_artifact(
            path, MAGIC, version=2, legacy_versions=(1,)
        ) == (1, b"payload")

    def test_crash_before_replace_keeps_old_content(self, tmp_path):
        path = tmp_path / "a.bin"
        write_artifact(path, MAGIC, 1, b"old")
        with FaultInjector() as injector:
            injector.arm("atomic.before_replace")
            with pytest.raises(SimulatedCrash):
                write_artifact(path, MAGIC, 1, b"new")
        assert read_artifact(path, MAGIC, version=1) == (1, b"old")
        assert not (tmp_path / "a.bin.tmp").exists()

    def test_atomic_write_replaces_whole_file(self, tmp_path):
        path = tmp_path / "plain.bin"
        atomic_write_bytes(path, b"first version, quite long")
        atomic_write_bytes(path, b"second")
        assert path.read_bytes() == b"second"


class TestWALAppendReplay:
    def test_round_trip_and_after_filter(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as log:
            for sequence in range(1, 8):
                log.append(sequence, b"payload-%d" % sequence)
        log = WriteAheadLog(tmp_path, fsync="off")
        assert log.last_sequence == 7
        assert list(log.replay()) == [
            (sequence, b"payload-%d" % sequence) for sequence in range(1, 8)
        ]
        assert [sequence for sequence, _ in log.replay(after=5)] == [6, 7]

    def test_sequences_must_strictly_increase(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off")
        log.append(1, b"a")
        log.append(5, b"gaps are fine")
        with pytest.raises(WALError, match="strictly increasing"):
            log.append(5, b"dup")
        with pytest.raises(WALError, match="strictly increasing"):
            log.append(2, b"rewind")

    def test_invalid_policy_and_bounds(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WriteAheadLog(tmp_path, fsync="sometimes")
        with pytest.raises(ConfigurationError):
            WriteAheadLog(tmp_path, batch_every=0)
        with pytest.raises(ConfigurationError):
            WriteAheadLog(tmp_path, segment_bytes=4)

    @pytest.mark.parametrize("policy", ["always", "batch", "off"])
    def test_all_policies_replay_identically(self, tmp_path, policy):
        directory = tmp_path / policy
        with WriteAheadLog(directory, fsync=policy, batch_every=3) as log:
            fill(log, 1, 10)
        log = WriteAheadLog(directory, fsync="off")
        assert [sequence for sequence, _ in log.replay()] == list(range(1, 11))


class TestWALRotationAndPrune:
    def test_rotation_splits_segments(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off", segment_bytes=200)
        fill(log, 1, 12)
        segments = log.segment_paths()
        assert len(segments) > 1
        assert segments[0].name == "wal-000000000001.seg"
        # Replay stitches the segments back together in order.
        assert [sequence for sequence, _ in log.replay()] == list(range(1, 13))

    def test_prune_keeps_everything_recovery_needs(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off", segment_bytes=200)
        fill(log, 1, 30)
        before = len(log.segment_paths())
        assert before > 3
        checkpoint_at = 17
        log.prune(checkpoint_at)
        survivors = log.segment_paths()
        assert len(survivors) < before
        replayed = [sequence for sequence, _ in log.replay(after=checkpoint_at)]
        assert replayed == list(range(checkpoint_at + 1, 31))

    def test_prune_never_deletes_newest_segment(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off", segment_bytes=200)
        fill(log, 1, 12)
        log.prune(10_000)
        assert len(log.segment_paths()) == 1
        assert log.last_sequence == 12


class TestWALTornTail:
    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as log:
            fill(log, 1, 10)
            last = log.segment_paths()[-1]
        FaultInjector.truncate_at(last, last.stat().st_size - 3)
        log = WriteAheadLog(tmp_path, fsync="off")
        assert log.last_sequence == 9
        assert [sequence for sequence, _ in log.replay()] == list(range(1, 10))
        # The log accepts new appends at the repaired position.
        log.append(10, b"retry")
        assert log.last_sequence == 10

    def test_fully_torn_segment_does_not_block_reuse(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off", segment_bytes=200) as log:
            fill(log, 1, 12)
            last = log.segment_paths()[-1]
            first_of_last = int(last.name[4:16])
        # Tear away every record of the last segment, header included.
        FaultInjector.truncate_at(last, 3)
        log = WriteAheadLog(tmp_path, fsync="off", segment_bytes=200)
        assert log.last_sequence == first_of_last - 1
        log.append(first_of_last, b"reused name")
        assert log.last_sequence == first_of_last

    def test_corrupt_record_with_valid_tail_raises_on_open(self, tmp_path):
        """A bit flip mid-last-segment with intact records after it is
        corruption, not a torn tail: opening must raise instead of
        silently truncating fsync-acknowledged records."""
        with WriteAheadLog(tmp_path, fsync="always") as log:
            fill(log, 1, 10)
            last = log.segment_paths()[-1]
        # Flip a byte inside the first record's payload: records 2..10
        # still parse cleanly after it.
        FaultInjector.corrupt_byte(last, 40)
        with pytest.raises(WALCorruptError, match="followed by valid"):
            WriteAheadLog(tmp_path, fsync="off")

    def test_corrupt_header_with_valid_records_raises_on_open(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="always") as log:
            fill(log, 1, 10)
            last = log.segment_paths()[-1]
        FaultInjector.corrupt_byte(last, 0)
        with pytest.raises(WALCorruptError, match="holds valid records"):
            WriteAheadLog(tmp_path, fsync="off")

    def test_mid_history_corruption_raises(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off", segment_bytes=200)
        fill(log, 1, 20)
        log.close()
        sealed = log.segment_paths()[0]
        FaultInjector.corrupt_byte(sealed, sealed.stat().st_size - 2)
        fresh = WriteAheadLog(tmp_path, fsync="off", segment_bytes=200)
        with pytest.raises(WALCorruptError):
            list(fresh.replay())

    def test_corrupt_sealed_header_raises_on_open(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off", segment_bytes=200)
        fill(log, 1, 20)
        log.close()
        sealed = log.segment_paths()[0]
        FaultInjector.corrupt_byte(sealed, 0)
        with pytest.raises(WALCorruptError):
            list(WriteAheadLog(tmp_path, fsync="off").replay())


class TestWALRollback:
    def test_rollback_last_removes_the_record(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off")
        log.append(1, b"a")
        log.append(2, b"rejected")
        log.rollback_last()
        assert log.last_sequence == 1
        # The freed sequence is appendable again (no monotonicity trip).
        log.append(2, b"accepted")
        log.close()
        replayed = list(WriteAheadLog(tmp_path, fsync="off").replay())
        assert replayed == [(1, b"a"), (2, b"accepted")]

    def test_rollback_requires_a_preceding_append(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off")
        with pytest.raises(WALError, match="roll back"):
            log.rollback_last()
        log.append(1, b"a")
        log.rollback_last()
        with pytest.raises(WALError, match="roll back"):
            log.rollback_last()

    def test_rollback_after_rotation(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off", segment_bytes=200)
        fill(log, 1, 6)
        segments_before = len(log.segment_paths())
        assert segments_before > 1
        log.append(7, b"rejected, lands in a fresh or full segment")
        log.rollback_last()
        assert log.last_sequence == 6
        log.append(7, b"retry")
        log.close()
        replayed = [s for s, _ in WriteAheadLog(tmp_path, fsync="off").replay()]
        assert replayed == list(range(1, 8))

    def test_drop_tail_record(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as log:
            fill(log, 1, 5)
        log = WriteAheadLog(tmp_path, fsync="off")
        log.drop_tail_record(5)
        assert log.last_sequence == 4
        assert [s for s, _ in log.replay()] == [1, 2, 3, 4]

    def test_drop_tail_record_refuses_non_tail(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as log:
            fill(log, 1, 5)
        log = WriteAheadLog(tmp_path, fsync="off")
        with pytest.raises(WALError, match="tail record"):
            log.drop_tail_record(3)

    def test_drop_sole_record_of_a_segment(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off", segment_bytes=200) as log:
            fill(log, 1, 12)
        log = WriteAheadLog(tmp_path, fsync="off", segment_bytes=200)
        tail = log.last_sequence
        records_in_last = sum(
            1 for s, _ in log.replay()
            if s >= int(log.segment_paths()[-1].name[4:16])
        )
        for expected in range(tail, tail - records_in_last, -1):
            log.drop_tail_record(expected)
        # The emptied segment was unlinked; the position rewound into
        # the previous segment.
        assert log.last_sequence == tail - records_in_last
        log.append(log.last_sequence + 1, b"resume")


class TestFailpoints:
    def test_crash_after_n_hits(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off")
        with FaultInjector() as injector:
            injector.arm("wal.after_append", after=2)
            log.append(1, b"a")
            log.append(2, b"b")
            with pytest.raises(SimulatedCrash):
                log.append(3, b"c")
        assert injector.log.count("wal.after_append") == 3

    def test_callable_action_sees_context(self, tmp_path):
        seen = {}

        def probe(point, context):
            seen.update(context)

        log = WriteAheadLog(tmp_path, fsync="always")
        with FaultInjector() as injector:
            injector.arm("wal.before_fsync", probe)
            log.append(1, b"a")
        assert seen["path"].endswith(".seg")

    def test_single_injector_at_a_time(self):
        with FaultInjector():
            with pytest.raises(ConfigurationError):
                FaultInjector().__enter__()

    def test_fire_is_inert_without_injector(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="always")
        log.append(1, b"a")  # every failpoint on this path is a no-op
        assert log.last_sequence == 1

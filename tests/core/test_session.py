"""Unit tests for the `SchemaSession` change-feed façade."""

import pytest

from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.core.session import DiffEvent, SchemaSession
from repro.errors import ConfigurationError, DanglingEdgeError
from repro.graph.batching import split_into_batches
from repro.graph.changes import ChangeSet
from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.store import GraphStore
from repro.schema.model import schema_fingerprint


def feed(session, graph, batches=3, seed=4):
    for batch in split_into_batches(graph, batches, seed=seed):
        session.add_batch(batch)
    return session


class TestChangeSet:
    def test_from_graph_round_trip(self, figure1_graph):
        change = ChangeSet.from_graph(figure1_graph)
        assert change.insert_count == len(figure1_graph)
        assert change.has_inserts and not change.has_deletions

    def test_emptiness(self):
        assert ChangeSet().is_empty
        assert not ChangeSet()
        assert ChangeSet.deletions(nodes=["x"])
        assert ChangeSet.inserts(nodes=[Node("a")]).change_count == 1


class TestChangeFeed:
    def test_apply_matches_add_batch(self, figure1_graph):
        by_batch = feed(SchemaSession(PGHiveConfig(seed=0)), figure1_graph)
        by_change = SchemaSession(PGHiveConfig(seed=0))
        for batch in split_into_batches(figure1_graph, 3, seed=4):
            by_change.apply(ChangeSet.from_graph(batch))
        assert schema_fingerprint(by_batch.schema()) == schema_fingerprint(
            by_change.schema()
        )

    def test_matches_discover_incremental(self, figure1_graph):
        config = PGHiveConfig(seed=0)
        batches = split_into_batches(figure1_graph, 3, seed=4)
        result = PGHive(config).discover_incremental(batches)
        session = feed(SchemaSession(config), figure1_graph)
        assert schema_fingerprint(session.schema()) == schema_fingerprint(
            result.schema
        )

    def test_reports_and_sequence(self, figure1_graph):
        session = feed(SchemaSession(PGHiveConfig(seed=0)), figure1_graph)
        assert [r.sequence for r in session.reports] == [1, 2, 3]
        assert session.sequence == 3
        assert all(r.seconds >= 0.0 for r in session.reports)

    def test_empty_change_set_is_a_recorded_noop(self, figure1_graph):
        session = feed(SchemaSession(PGHiveConfig(seed=0)), figure1_graph)
        types_before = session.schema_graph.node_type_count
        report = session.apply(ChangeSet())
        assert report.nodes_inserted == report.nodes_deleted == 0
        assert session.schema_graph.node_type_count == types_before


class TestSnapshots:
    def test_mid_stream_schema_is_post_processed(self, figure1_graph):
        session = SchemaSession(PGHiveConfig(seed=0))
        batches = split_into_batches(figure1_graph, 2, seed=3)
        session.add_batch(batches[0])
        # The raw schema is lazy: nothing post-processed yet.
        assert all(
            spec.data_type is None
            for t in session.schema_graph.node_types()
            for spec in t.properties.values()
        )
        snapshot = session.schema()
        assert any(
            spec.data_type is not None
            for t in snapshot.node_types()
            for spec in t.properties.values()
        )
        # The stream continues after the read.
        session.add_batch(batches[1])
        person = session.schema().node_type_by_token("Person")
        assert person.properties["name"].data_type is not None

    def test_snapshot_cached_until_next_write(self, figure1_graph):
        session = feed(SchemaSession(PGHiveConfig(seed=0)), figure1_graph)
        session.schema()
        lap_after_first = session.timer.lap("postprocess")
        session.schema()  # clean read: no second post-processing pass
        assert session.timer.lap("postprocess") == lap_after_first
        assert not session.dirty

    def test_finalize_matches_schema_read(self, figure1_graph):
        config = PGHiveConfig(seed=0)
        read = feed(SchemaSession(config), figure1_graph).schema()
        finalized = feed(SchemaSession(config), figure1_graph).finalize().schema
        assert schema_fingerprint(read) == schema_fingerprint(finalized)


class TestDiffSubscriptions:
    def test_event_per_change_set(self, figure1_graph):
        session = SchemaSession(PGHiveConfig(seed=0))
        events: list[DiffEvent] = []
        session.subscribe(events.append)
        batches = split_into_batches(figure1_graph, 3, seed=4)
        for batch in batches:
            session.add_batch(batch)
        assert [e.sequence for e in events] == [1, 2, 3]
        assert events[0].report.nodes_inserted == batches[0].node_count

    def test_first_event_reports_new_types(self, figure1_graph):
        session = SchemaSession(PGHiveConfig(seed=0))
        events = []
        session.subscribe(events.append)
        session.add_batch(figure1_graph)
        diff = events[0].diff
        assert set(diff.added_node_types) == {"Org.", "Person", "Place", "Post"}
        assert not diff.removed_node_types

    def test_unsubscribe_stops_delivery(self, figure1_graph):
        session = SchemaSession(PGHiveConfig(seed=0))
        events = []
        callback = session.subscribe(events.append)
        batches = split_into_batches(figure1_graph, 2, seed=3)
        session.add_batch(batches[0])
        session.unsubscribe(callback)
        session.add_batch(batches[1])
        assert len(events) == 1
        session.unsubscribe(callback)  # unknown callback: no-op

    def test_deletion_emits_removed_type(self, figure1_graph):
        session = SchemaSession(
            PGHiveConfig(seed=0), retain_union=True
        )
        session.add_batch(figure1_graph)
        events = []
        session.subscribe(events.append)
        session.apply(ChangeSet.deletions(nodes=["place"]))
        assert events[-1].diff.removed_node_types == ["Place"]
        assert events[-1].report.nodes_deleted == 1


class TestDeletions:
    def test_requires_retained_union(self, figure1_graph):
        session = SchemaSession(PGHiveConfig(seed=0))
        session.add_batch(figure1_graph)
        with pytest.raises(ConfigurationError):
            session.apply(ChangeSet.deletions(nodes=["place"]))

    def test_delete_cascades_and_drops_types(self, figure1_graph):
        session = SchemaSession(PGHiveConfig(seed=0), retain_union=True)
        session.add_batch(figure1_graph)
        report = session.apply(ChangeSet.deletions(nodes=["place"]))
        assert report.nodes_deleted == 1
        assert report.edges_deleted == 2  # both LOCATED_IN edges
        schema = session.schema()
        assert schema.node_type_by_token("Place") is None
        assert schema.edge_type_by_token("LOCATED_IN") is None

    def test_streaming_falls_back_to_full_scan(self, figure1_graph):
        session = SchemaSession(PGHiveConfig(seed=0), retain_union=True)
        session.add_batch(figure1_graph)
        assert session._streaming_valid
        session.apply(ChangeSet.deletions(edges=["e2"]))
        assert not session._streaming_valid
        knows = session.schema().edge_type_by_token("KNOWS")
        assert knows.instance_ids == {"e1"}
        # "since" died with e2: its count is gone and the spec is pruned
        # with it -- no surviving instance backs it, so leaving a phantom
        # STRING/optional entry would misdescribe the data (and would
        # diverge from the sharded merge, which only sees live carriers).
        assert knows.property_counts.get("since", 0) == 0
        assert "since" not in knows.properties

    def test_mixed_change_set_inserts_before_deletes(self, figure1_graph):
        session = SchemaSession(PGHiveConfig(seed=0), retain_union=True)
        session.add_batch(figure1_graph)
        change = ChangeSet(
            nodes=[Node("eve", {"Person"}, {"name": "Eve", "gender": "f",
                                            "bday": "1/1/2000"})],
            delete_nodes=["john"],
        )
        report = session.apply(change)
        assert report.nodes_inserted == 1 and report.nodes_deleted == 1
        person = session.schema().node_type_by_token("Person")
        assert "eve" in person.instance_ids
        assert "john" not in person.instance_ids


class TestEndpointResolution:
    def test_unresolvable_endpoint_raises(self):
        session = SchemaSession(PGHiveConfig(seed=0))
        with pytest.raises(DanglingEdgeError):
            session.apply(
                ChangeSet.inserts(edges=[Edge("e", "ghost-a", "ghost-b")])
            )

    def test_union_resolves_endpoint_stubs(self, figure1_graph):
        session = SchemaSession(PGHiveConfig(seed=0), retain_union=True)
        session.add_batch(figure1_graph)
        # New edge between already-known nodes, shipped without stubs.
        report = session.apply(
            ChangeSet.inserts(edges=[Edge("e8", "alice", "post2", {"LIKES"})])
        )
        assert report.edges_inserted == 1
        # Resolved endpoint stubs are replays, not inserts.
        assert report.nodes_inserted == 0
        likes = session.schema().edge_type_by_token("LIKES")
        assert "e8" in likes.instance_ids

    def test_store_resolves_endpoint_stubs(self, figure1_graph):
        store = GraphStore(figure1_graph)
        session = SchemaSession(PGHiveConfig(seed=0))
        store.attach(session, replay=True)
        store.detach()
        session.bind_store(store)  # resolution-only binding
        session.apply(
            ChangeSet.inserts(edges=[Edge("e8", "alice", "post2", {"LIKES"})])
        )
        likes = session.schema().edge_type_by_token("LIKES")
        assert "e8" in likes.instance_ids


class TestStoreAttachment:
    def test_mutations_flow_live(self, figure1_graph):
        store = GraphStore()
        session = SchemaSession(PGHiveConfig(seed=0))
        store.attach(session)
        for node in figure1_graph.nodes():
            store.add_node(node)
        for edge in figure1_graph.edges():
            store.add_edge(edge)
        tokens = {t.token for t in session.schema().node_types()}
        assert tokens == {"Person", "Post", "Org.", "Place"}
        assert session.sequence == len(figure1_graph)

    def test_buffered_flush(self, figure1_graph):
        store = GraphStore()
        session = SchemaSession(PGHiveConfig(seed=0))
        store.attach(session, flush_every=1000)
        for node in figure1_graph.nodes():
            store.add_node(node)
        assert session.sequence == 0  # still buffered
        store.flush()
        assert session.sequence == 1
        assert session.schema().node_type_count == 4

    def test_detach_flushes_and_stops(self, figure1_graph):
        store = GraphStore()
        session = SchemaSession(PGHiveConfig(seed=0))
        store.attach(session, flush_every=1000)
        for node in figure1_graph.nodes():
            store.add_node(node)
        store.detach()
        assert session.sequence == 1  # detach flushed the buffer
        store.add_node(Node("late", {"Person"}, {"name": "Late"}))
        assert session.sequence == 1  # no longer forwarded

    def test_replay_seeds_preloaded_store(self, figure1_graph):
        store = GraphStore(figure1_graph)
        session = SchemaSession(PGHiveConfig(seed=0))
        store.attach(session, replay=True)
        assert session.schema().node_type_count == 4

    def test_unforwardable_deletion_rejected_before_mutation(
        self, figure1_graph
    ):
        # A union-less session cannot consume deletions; the store must
        # refuse *before* mutating so store and session never diverge.
        store = GraphStore(figure1_graph)
        session = SchemaSession(PGHiveConfig(seed=0))
        store.attach(session, replay=True)
        for mutation in (
            lambda: store.remove_node("place"),
            lambda: store.remove_edge("e1"),
            lambda: store.update_node(store.node("john")),
            lambda: store.update_edge(store.edge("e1")),
        ):
            with pytest.raises(ConfigurationError):
                mutation()
        assert store.graph.has_node("place")  # nothing was committed
        assert store.graph.has_edge("e1")
        store.add_node(Node("late", {"Person"}, {"name": "Late"}))
        assert session.sequence == 2  # replay + the late insert still flow

    def test_double_attach_rejected(self, figure1_graph):
        store = GraphStore()
        store.attach(SchemaSession(PGHiveConfig(seed=0)))
        with pytest.raises(ConfigurationError):
            store.attach(SchemaSession(PGHiveConfig(seed=0)))

    def test_store_deletions_flow_through(self, figure1_graph):
        store = GraphStore()
        session = SchemaSession(PGHiveConfig(seed=0), retain_union=True)
        store.attach(session, replay=False)
        for node in figure1_graph.nodes():
            store.add_node(node)
        for edge in figure1_graph.edges():
            store.add_edge(edge)
        store.remove_node("place")
        schema = session.schema()
        assert schema.node_type_by_token("Place") is None
        assert not session.union_graph.has_node("place")

    def test_update_node_reroutes_as_delete_insert(self, figure1_graph):
        store = GraphStore()
        session = SchemaSession(PGHiveConfig(seed=0), retain_union=True)
        store.attach(session)
        for node in figure1_graph.nodes():
            store.add_node(node)
        for edge in figure1_graph.edges():
            store.add_edge(edge)
        updated = store.node("john").with_properties(
            {"name": "John", "gender": "male", "bday": "24/9/2005",
             "city": "Athens"}
        )
        store.update_node(updated)
        person = session.schema().node_type_by_token("Person")
        assert "john" in person.instance_ids
        assert "city" in person.property_keys
        # Incident edges survived the delete/reinsert round trip.
        knows = session.schema_graph.edge_type_by_token("KNOWS")
        assert {"e1", "e2"} <= knows.instance_ids

    def test_update_edge_reroutes_as_delete_insert(self, figure1_graph):
        store = GraphStore()
        session = SchemaSession(PGHiveConfig(seed=0), retain_union=True)
        store.attach(session)
        for node in figure1_graph.nodes():
            store.add_node(node)
        for edge in figure1_graph.edges():
            store.add_edge(edge)
        store.update_edge(store.edge("e2").with_properties({"since": 2026}))
        knows = session.schema().edge_type_by_token("KNOWS")
        assert "e2" in knows.instance_ids
        assert session.union_graph.edge("e2").properties["since"] == 2026


class TestAdapterDelegation:
    def test_incremental_engine_is_session_backed(self, figure1_graph):
        from repro.core.incremental import IncrementalSchemaDiscovery

        engine = IncrementalSchemaDiscovery(PGHiveConfig(seed=0))
        assert isinstance(engine.session, SchemaSession)
        for batch in split_into_batches(figure1_graph, 2, seed=1):
            engine.add_batch(batch)
        assert engine.schema is engine.session.schema_graph

    def test_maintained_schema_is_session_backed(self, figure1_graph):
        from repro.core.maintenance import MaintainedSchema

        maintained = MaintainedSchema(PGHiveConfig(seed=0))
        assert isinstance(maintained.session, SchemaSession)
        maintained.insert_batch(figure1_graph)
        assert maintained.delete_nodes(["place"]) == 1

    def test_discover_equals_session_full_scan(self, figure1_graph):
        config = PGHiveConfig(seed=0)
        result = PGHive(config).discover(figure1_graph)
        session = SchemaSession(
            config,
            schema_name=f"{figure1_graph.name}-schema",
            retain_union=True,
            streaming_postprocess=False,
        )
        session.add_batch(figure1_graph)
        assert schema_fingerprint(result.schema) == schema_fingerprint(
            session.schema()
        )

    def test_oracle_mode_requires_union(self):
        with pytest.raises(ConfigurationError):
            SchemaSession(
                PGHiveConfig(seed=0), streaming_postprocess=False
            )

    def test_adopted_union_is_not_copied(self, figure1_graph):
        session = SchemaSession(
            PGHiveConfig(seed=0), retain_union=True,
            streaming_postprocess=False,
        )
        session._adopt_union(figure1_graph)
        session.add_batch(figure1_graph)
        assert session.union_graph is figure1_graph
        with pytest.raises(ConfigurationError):
            session._adopt_union(figure1_graph)  # no longer fresh

"""Unit tests for the mergeable :class:`DiscoveryState` value object."""

import pytest

from repro.core.config import PGHiveConfig
from repro.core.session import SchemaSession
from repro.core.state import DiscoveryState
from repro.errors import ConfigurationError
from repro.graph.changes import ChangeSet
from repro.graph.model import Edge, Node
from repro.lsh.minhash import MinHashLSH
from repro.schema.model import NodeType, SchemaGraph, schema_fingerprint


def person(serial: int) -> Node:
    return Node(f"p{serial}", {"Person"}, {"person_id": serial})


def org(serial: int) -> Node:
    return Node(f"o{serial}", {"Org"}, {"org_id": serial, "url": f"u{serial}"})


def driven_session(nodes, edges=(), config=None) -> SchemaSession:
    session = SchemaSession(config or PGHiveConfig(seed=1))
    session.apply(ChangeSet.inserts(nodes=nodes, edges=edges))
    return session


class TestFresh:
    def test_fresh_state_shape(self):
        state = DiscoveryState.fresh("s", retain_union=True)
        assert state.schema.name == "s"
        assert state.union is not None
        assert state.sequence == 0
        assert state.streaming_valid and not state.dirty
        assert DiscoveryState.fresh("s").union is None


class TestMerge:
    def test_merge_combines_disjoint_partitions(self):
        config = PGHiveConfig(seed=1)
        left = driven_session([person(1), person(2)], config=config)
        right = driven_session([person(3), org(4)], config=config)
        merged = left.discovery_state.merge(right.discovery_state)
        both = driven_session(
            [person(1), person(2), person(3), org(4)], config=config
        )
        # Same assignments, counts, and accumulators as one session that
        # saw everything (fingerprints ignore ids and ordering).
        merged_session = SchemaSession.from_state(merged, config)
        assert schema_fingerprint(merged_session.schema()) == schema_fingerprint(
            both.schema()
        )

    def test_merge_does_not_mutate_inputs(self):
        config = PGHiveConfig(seed=1)
        left = driven_session([person(1)], config=config)
        right = driven_session([org(2)], config=config)
        before_left = schema_fingerprint(left.schema_graph)
        before_right = schema_fingerprint(right.schema_graph)
        left.discovery_state.merge(right.discovery_state)
        assert schema_fingerprint(left.schema_graph) == before_left
        assert schema_fingerprint(right.schema_graph) == before_right

    def test_merge_unions_minhash_signature_caches(self):
        left = DiscoveryState.fresh("l")
        right = DiscoveryState.fresh("r")
        key = (4, 2, 123)
        left_lsh = MinHashLSH(4, 2, seed=123)
        right_lsh = MinHashLSH(4, 2, seed=123)
        left_lsh.signature(frozenset({"a", "b"}))
        right_lsh.signature(frozenset({"c"}))
        left.pipeline.minhash_cache[key] = left_lsh
        right.pipeline.minhash_cache[key] = right_lsh
        merged = left.merge(right)
        merged_lsh = merged.pipeline.minhash_cache[key]
        assert merged_lsh.cache_size == left_lsh.cache_size + right_lsh.cache_size
        # Inputs untouched.
        assert left_lsh.cache_size == 1 and right_lsh.cache_size == 1

    def test_merge_rejects_mismatched_minhash_parameters(self):
        with pytest.raises(ConfigurationError):
            MinHashLSH(4, 2, seed=1).merge_cache_from(MinHashLSH(4, 2, seed=2))

    def test_merge_drops_zero_instance_stub_echo_types(self):
        state = DiscoveryState.fresh("l")
        ghost = NodeType("n0", {"Ghost"})
        state.schema.add_node_type(ghost)  # zero recorded instances
        merged = state.merge(DiscoveryState.fresh("r"))
        assert merged.schema.node_type_count == 0

    def test_merge_flags_fold_monotonically(self):
        left = DiscoveryState.fresh("l")
        right = DiscoveryState.fresh("r")
        left.sequence, right.sequence = 3, 5
        right.streaming_valid = False
        left.dirty = True
        merged = left.merge(right)
        assert merged.sequence == 5
        assert not merged.streaming_valid
        assert merged.dirty

    def test_merged_union_requires_union_on_every_input(self):
        with_union = DiscoveryState.fresh("a", retain_union=True)
        without = DiscoveryState.fresh("b")
        assert with_union.merge(without).union is None
        assert with_union.merge(
            DiscoveryState.fresh("c", retain_union=True)
        ).union is not None

    def test_merged_schema_names_are_canonical(self):
        config = PGHiveConfig(seed=1)
        left = driven_session([person(1)], config=config)
        right = driven_session([org(2)], config=config)
        merged = DiscoveryState.merged(
            [left.discovery_state, right.discovery_state]
        )
        assert sorted(t.type_id for t in merged.schema.node_types()) == [
            "n:Org",
            "n:Person",
        ]
        other_order = DiscoveryState.merged(
            [right.discovery_state, left.discovery_state]
        )
        assert schema_fingerprint(other_order.schema) == schema_fingerprint(
            merged.schema
        )


class TestFromState:
    def test_from_state_continues_the_feed(self):
        config = PGHiveConfig(seed=1)
        donor = driven_session([person(1), org(2)], config=config)
        resumed = SchemaSession.from_state(donor.discovery_state, config)
        oracle = SchemaSession(config)
        oracle.apply(ChangeSet.inserts(nodes=[person(1), org(2)]))
        extra = ChangeSet.inserts(
            nodes=[person(3)],
            edges=[Edge("e1", "p3", "p1", {"R_Person_Person"})],
        )
        # The donor's union-free state cannot resolve p1; ship a stub.
        stubbed = ChangeSet(
            nodes=[person(3), person(1)],
            edges=list(extra.edges),
            stub_node_ids=frozenset({"p1"}),
        )
        resumed.apply(stubbed)
        oracle.apply(stubbed)
        assert schema_fingerprint(resumed.schema()) == schema_fingerprint(
            oracle.schema()
        )

    def test_from_state_follows_union_presence(self):
        config = PGHiveConfig(seed=1)
        no_union = SchemaSession.from_state(DiscoveryState.fresh("s"), config)
        assert not no_union.retains_union
        with_union = SchemaSession.from_state(
            DiscoveryState.fresh("s", retain_union=True), config
        )
        assert with_union.retains_union


class TestStubRecording:
    def test_marked_stubs_are_not_recorded(self):
        config = PGHiveConfig(seed=1)
        session = SchemaSession(config)
        session.apply(
            ChangeSet(
                nodes=[person(1), person(2)],
                stub_node_ids=frozenset({"p2"}),
            )
        )
        (node_type,) = session.schema_graph.node_types()
        assert node_type.instance_ids == {"p1"}
        assert node_type.instance_count == 1

    def test_edge_sharing_a_stubbed_node_id_is_still_recorded(self):
        """Node and edge id namespaces may overlap: excluding a stub node
        id must never suppress an edge whose edge_id collides with it."""
        config = PGHiveConfig(seed=1)
        session = SchemaSession(config)
        session.apply(ChangeSet.inserts(nodes=[Node("7", {"Person"})]))
        collision = ChangeSet(
            nodes=[Node("8", {"Person"}), Node("7", {"Person"})],
            # edge id "7" == the stubbed endpoint node id
            edges=[Edge("7", "8", "7", {"R_Person_Person"})],
            stub_node_ids=frozenset({"7"}),
        )
        session.apply(collision)
        (edge_type,) = session.schema_graph.edge_types()
        assert edge_type.instance_ids == {"7"}
        assert edge_type.instance_count == 1

    def test_stub_only_changeset_creates_no_instances(self):
        config = PGHiveConfig(seed=1)
        session = SchemaSession(config)
        report = session.apply(
            ChangeSet(nodes=[person(1)], stub_node_ids=frozenset({"p1"}))
        )
        assert report.nodes_inserted == 0
        for node_type in session.schema_graph.node_types():
            assert node_type.instance_count == 0


class TestCanonicalFingerprint:
    def test_fingerprint_ignores_type_ids_and_order(self):
        left = SchemaGraph("l")
        alpha = NodeType("n0", {"A"})
        alpha.record_instance("a1", ["x"])
        beta = NodeType("n1", {"B"})
        beta.record_instance("b1", ["y"])
        left.add_node_type(alpha)
        left.add_node_type(beta)
        right = SchemaGraph("r")
        right.add_node_type(beta.copy())
        renamed = alpha.copy()
        renamed.type_id = "n:A"
        right.add_node_type(renamed)
        assert schema_fingerprint(left) == schema_fingerprint(right)

    def test_fingerprint_still_separates_different_content(self):
        left = SchemaGraph("l")
        alpha = NodeType("n0", {"A"})
        alpha.record_instance("a1", ["x"])
        left.add_node_type(alpha)
        right = SchemaGraph("r")
        other = NodeType("n0", {"A"})
        other.record_instance("a2", ["x"])
        right.add_node_type(other)
        assert schema_fingerprint(left) != schema_fingerprint(right)

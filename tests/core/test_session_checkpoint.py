"""Checkpoint/restore round-trip tests for `SchemaSession`.

The acceptance bar: a session checkpointed mid-stream, restored (as a
fresh process would), and fed the remaining batches must produce a
bit-identical schema to an uninterrupted run over the same stream.
"""

import pickle

import pytest

from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.durability import payload_digest
from repro.core.session import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    SchemaSession,
)
from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointFormatError,
    CheckpointVersionError,
)
from repro.graph.batching import split_into_batches
from repro.graph.changes import ChangeSet
from repro.schema.model import schema_fingerprint


def stream(graph, batches=5, seed=4):
    return split_into_batches(graph, batches, seed=seed)


@pytest.mark.parametrize("method", list(ClusteringMethod))
class TestRoundTrip:
    def test_restore_is_bit_identical(self, figure1_graph, tmp_path, method):
        config = PGHiveConfig(method=method, seed=0, infer_keys=True)
        session = SchemaSession(config)
        for batch in stream(figure1_graph)[:3]:
            session.add_batch(batch)
        path = session.checkpoint(tmp_path / "mid.ckpt")
        restored = SchemaSession.restore(path)
        assert schema_fingerprint(restored.schema_graph) == schema_fingerprint(
            session.schema_graph
        )
        assert restored.sequence == session.sequence
        assert restored.reports == session.reports

    def test_resumed_stream_matches_uninterrupted(
        self, figure1_graph, tmp_path, method
    ):
        config = PGHiveConfig(method=method, seed=0, infer_keys=True)
        batches = stream(figure1_graph)

        uninterrupted = SchemaSession(config)
        for batch in batches:
            uninterrupted.add_batch(batch)

        interrupted = SchemaSession(config)
        for batch in batches[:2]:
            interrupted.add_batch(batch)
        path = interrupted.checkpoint(tmp_path / "crash.ckpt")
        del interrupted  # the worker "crashes" here

        resumed = SchemaSession.restore(path)
        for batch in batches[2:]:
            resumed.add_batch(batch)
        assert schema_fingerprint(resumed.schema()) == schema_fingerprint(
            uninterrupted.schema()
        )


class TestCheckpointCoverage:
    def test_pipeline_state_survives(self, figure1_graph, tmp_path):
        config = PGHiveConfig(method=ClusteringMethod.MINHASH, seed=0)
        session = SchemaSession(config)
        for batch in stream(figure1_graph)[:3]:
            session.add_batch(batch)
        restored = SchemaSession.restore(
            session.checkpoint(tmp_path / "state.ckpt")
        )
        # The fitted preprocessor (with its embedding cache) came along ...
        assert restored.state.preprocessor is not None
        assert set(restored.state.preprocessor._embedding_cache) == set(
            session.state.preprocessor._embedding_cache
        )
        # ... as did the MinHash instances with their signature caches.
        assert set(restored.state.minhash_cache) == set(session.state.minhash_cache)
        for key, lsh in session.state.minhash_cache.items():
            assert set(restored.state.minhash_cache[key]._signature_cache) == set(
                lsh._signature_cache
            )

    def test_union_and_deletions_survive(self, figure1_graph, tmp_path):
        session = SchemaSession(PGHiveConfig(seed=0), retain_union=True)
        session.add_batch(figure1_graph)
        session.apply(ChangeSet.deletions(nodes=["place"]))
        restored = SchemaSession.restore(
            session.checkpoint(tmp_path / "union.ckpt")
        )
        assert not restored.union_graph.has_node("place")
        assert not restored._streaming_valid
        # The restored session keeps deleting against the restored union.
        restored.apply(ChangeSet.deletions(nodes=["org"]))
        assert restored.schema().node_type_by_token("Org.") is None

    def test_dirty_flag_round_trips(self, figure1_graph, tmp_path):
        session = SchemaSession(PGHiveConfig(seed=0))
        session.add_batch(figure1_graph)
        assert session.dirty
        restored = SchemaSession.restore(
            session.checkpoint(tmp_path / "dirty.ckpt")
        )
        assert restored.dirty
        assert restored.schema().node_type_by_token("Person") is not None


class TestFormat:
    def test_header_pins_magic_version_digest_length(
        self, figure1_graph, tmp_path
    ):
        session = SchemaSession(PGHiveConfig(seed=0))
        session.add_batch(figure1_graph)
        path = session.checkpoint(tmp_path / "fmt.ckpt")
        header, payload = path.read_bytes().split(b"\n", 1)
        magic, version, digest, length = header.split()
        assert magic == CHECKPOINT_MAGIC
        assert int(version) == CHECKPOINT_VERSION
        assert digest.decode("ascii") == payload_digest(payload)
        assert int(length) == len(payload)

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"definitely not a checkpoint\n" + b"\x00" * 32)
        with pytest.raises(CheckpointFormatError):
            SchemaSession.restore(path)

    def test_rejects_future_version(self, figure1_graph, tmp_path):
        session = SchemaSession(PGHiveConfig(seed=0))
        session.add_batch(figure1_graph)
        original = session.checkpoint(tmp_path / "orig.ckpt").read_bytes()
        header, payload = original.split(b"\n", 1)
        magic, _version, digest, length = header.split()
        bumped = b"%s %d %s %s\n" % (
            magic,
            CHECKPOINT_VERSION + 1,
            digest,
            length,
        )
        path = tmp_path / "future.ckpt"
        path.write_bytes(bumped + payload)
        with pytest.raises(CheckpointVersionError, match="version"):
            SchemaSession.restore(path)

    def test_rejects_truncated_payload(self, figure1_graph, tmp_path):
        session = SchemaSession(PGHiveConfig(seed=0))
        session.add_batch(figure1_graph)
        original = session.checkpoint(tmp_path / "full.ckpt").read_bytes()
        path = tmp_path / "cut.ckpt"
        path.write_bytes(original[: len(original) // 2])
        with pytest.raises(CheckpointCorruptError):
            SchemaSession.restore(path)

    def test_rejects_flipped_payload_byte(self, figure1_graph, tmp_path):
        session = SchemaSession(PGHiveConfig(seed=0))
        session.add_batch(figure1_graph)
        path = session.checkpoint(tmp_path / "flip.ckpt")
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptError, match="digest"):
            SchemaSession.restore(path)

    def test_reads_legacy_v1_header(self, figure1_graph, tmp_path):
        session = SchemaSession(PGHiveConfig(seed=0))
        session.add_batch(figure1_graph)
        v2 = session.checkpoint(tmp_path / "v2.ckpt").read_bytes()
        payload = v2.split(b"\n", 1)[1]
        legacy = tmp_path / "legacy.ckpt"
        legacy.write_bytes(CHECKPOINT_MAGIC + b" 1\n" + payload)
        restored = SchemaSession.restore(legacy)
        assert schema_fingerprint(restored.schema()) == schema_fingerprint(
            session.schema()
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            SchemaSession.restore(tmp_path / "absent.ckpt")

    def test_payload_is_a_plain_pickle_after_header(
        self, figure1_graph, tmp_path
    ):
        session = SchemaSession(PGHiveConfig(seed=0))
        session.add_batch(figure1_graph)
        path = session.checkpoint(tmp_path / "raw.ckpt")
        with open(path, "rb") as handle:
            handle.readline()
            payload = pickle.load(handle)
        assert payload["sequence"] == 1
        assert payload["schema_name"] == "session-schema"

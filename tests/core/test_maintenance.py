"""Unit tests for schema maintenance under deletions (extension)."""

from repro.core.config import PGHiveConfig
from repro.core.maintenance import MaintainedSchema
from repro.graph.batching import split_into_batches
from repro.graph.model import Edge, Node, PropertyGraph


def build_maintained(graph, batches=2, seed=0, **kwargs) -> MaintainedSchema:
    maintained = MaintainedSchema(PGHiveConfig(seed=seed), **kwargs)
    for batch in split_into_batches(graph, batches, seed=seed):
        maintained.insert_batch(batch)
    maintained.refresh()
    return maintained


class TestDeletionBasics:
    def test_delete_node_removes_instance(self, figure1_graph):
        maintained = build_maintained(figure1_graph)
        person = maintained.schema.node_type_by_token("Person")
        before = person.instance_count
        assert maintained.delete_nodes(["john"]) == 1
        assert person.instance_count == before - 1
        assert "john" not in person.instance_ids
        assert not maintained.graph.has_node("john")

    def test_delete_node_cascades_to_edges(self, figure1_graph):
        maintained = build_maintained(figure1_graph)
        knows = maintained.schema.edge_type_by_token("KNOWS")
        maintained.delete_nodes(["john"])  # both KNOWS edges end at john
        assert knows.instance_count == 0 or not any(
            t.token == "KNOWS" for t in maintained.schema.edge_types()
        )

    def test_type_dropped_when_empty(self, figure1_graph):
        maintained = build_maintained(figure1_graph)
        maintained.delete_nodes(["place"])
        assert maintained.schema.node_type_by_token("Place") is None

    def test_delete_unknown_ids_is_noop(self, figure1_graph):
        maintained = build_maintained(figure1_graph)
        assert maintained.delete_nodes(["ghost"]) == 0
        assert maintained.delete_edges(["ghost"]) == 0

    def test_delete_edges_only(self, figure1_graph):
        maintained = build_maintained(figure1_graph)
        assert maintained.delete_edges(["e3", "e4"]) == 2
        assert maintained.schema.edge_type_by_token("LIKES") is None
        # Endpoint nodes survive.
        assert maintained.graph.has_node("post1")


class TestConstraintRecomputation:
    def test_property_can_become_mandatory_after_deletion(self):
        # Three instances; one lacks "x".  After deleting it, x is mandatory.
        graph = PropertyGraph()
        graph.add_node(Node("a", {"T"}, {"x": 1, "y": 1}))
        graph.add_node(Node("b", {"T"}, {"x": 2, "y": 2}))
        graph.add_node(Node("c", {"T"}, {"y": 3}))
        maintained = build_maintained(graph, batches=1)
        node_type = maintained.schema.node_type_by_token("T")
        assert node_type.properties["x"].mandatory is False
        maintained.delete_nodes(["c"])
        maintained.refresh()
        assert node_type.properties["x"].mandatory is True

    def test_cardinality_tightens_after_deletion(self):
        graph = PropertyGraph()
        graph.add_node(Node("hub", {"H"}, {"k": 1}))
        for i in range(3):
            graph.add_node(Node(f"s{i}", {"S"}, {"k": i}))
            graph.add_edge(Edge(f"e{i}", f"s{i}", "hub", {"R"}))
        maintained = build_maintained(graph, batches=1)
        edge_type = maintained.schema.edge_type_by_token("R")
        assert str(edge_type.cardinality) == "N:1"
        maintained.delete_edges(["e1", "e2"])
        maintained.refresh()
        assert str(edge_type.cardinality) == "0:1"

    def test_property_disappears_with_last_holder(self):
        graph = PropertyGraph()
        graph.add_node(Node("a", {"T"}, {"x": 1}))
        graph.add_node(Node("b", {"T"}, {"x": 2, "extra": 9}))
        maintained = build_maintained(graph, batches=1)
        node_type = maintained.schema.node_type_by_token("T")
        maintained.delete_nodes(["b"])
        assert node_type.property_counts.get("extra", 0) == 0

    def test_keys_recomputed_when_enabled(self):
        graph = PropertyGraph()
        graph.add_node(Node("a", {"T"}, {"v": 1}))
        graph.add_node(Node("b", {"T"}, {"v": 1}))
        graph.add_node(Node("c", {"T"}, {"v": 2}))
        maintained = build_maintained(
            graph, batches=1, infer_key_constraints=True
        )
        node_type = maintained.schema.node_type_by_token("T")
        assert node_type.candidate_keys == []  # duplicate value 1
        maintained.delete_nodes(["b"])
        maintained.refresh()
        assert node_type.candidate_keys == [("v",)]


class TestInsertAfterDelete:
    def test_reinsertion_recreates_type(self, figure1_graph):
        maintained = build_maintained(figure1_graph)
        maintained.delete_nodes(["place"])
        assert maintained.schema.node_type_by_token("Place") is None
        addition = PropertyGraph("more")
        addition.add_node(Node("place2", {"Place"}, {"name": "Crete"}))
        maintained.insert_batch(addition)
        assert maintained.schema.node_type_by_token("Place") is not None

"""Unit coverage for the shared-memory handoff plumbing.

The oracle suite (``tests/properties/test_shm_oracle.py``) proves the
handoff is invisible end to end; these tests pin the mechanism itself:
content-exact encode/decode across interner lineages, typed value
columns, descriptor size, and the ref-counted block registry's
guaranteed reclamation (release, release_all, and finalizer paths).
"""

import gc
import pickle
from pathlib import Path

import pytest

from repro.core.shm import (
    SHM_NAME_PREFIX,
    ShmBlockRegistry,
    decode_changeset_shm,
    encode_changeset_shm,
    rebase_changeset,
    shm_available,
)
from repro.graph.changes import ChangeSet
from repro.graph.columnar import BatchBuilder, Interner

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def shm_dir_names():
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return frozenset()
    return frozenset(p.name for p in shm_dir.glob(SHM_NAME_PREFIX + "*"))


def sample_changeset(interner):
    """A columnar change-set with every value-column tag: i8, f8, str,
    bool, and the pickled-object fallback (mixed types in one column)."""
    builder = BatchBuilder(interner)
    labels = interner.intern_labels(["Person"])
    # Key sets are sorted on intern; values align with that order:
    # (active, age, extra, name, score).
    keys = interner.intern_keys(["age", "name", "score", "active", "extra"])
    builder.add_node("v1", labels, keys, (True, 31, None, "ada", 0.5))
    builder.add_node("v2", labels, keys, (False, 47, [1, 2], "bob", 1.25))
    org = interner.intern_labels(["Org"])
    org_keys = interner.intern_keys(["url"])
    builder.add_node("v3", org, org_keys, ("https://x",))
    rel = interner.intern_labels(["WORKS_AT"])
    rel_keys = interner.intern_keys(["since"])
    builder.add_edge("r1", "v1", "v3", rel, rel_keys, (2020,))
    builder.add_edge("r2", "v2", "v3", rel, rel_keys, (2021,))
    return ChangeSet(
        delete_nodes=["gone-1"],
        delete_edges=["gone-e"],
        stub_node_ids=frozenset({"v3"}),
        columnar=builder.freeze(),
    )


def node_facts(change_set):
    """Lineage-independent node content: id -> (labels, properties)."""
    batch = change_set.columnar
    interner = batch.interner
    facts = {}
    for row, node_id in enumerate(batch.nodes.ids):
        labelset_id, keyset_id, values = batch.node_record(row)
        labels = interner.labelset(labelset_id).labels
        keys = interner.keyset(keyset_id).keys
        facts[node_id] = (labels, dict(zip(keys, values)))
    return facts


def edge_facts(change_set):
    batch = change_set.columnar
    interner = batch.interner
    facts = {}
    for row, edge_id in enumerate(batch.edges.ids):
        src, tgt, labelset_id, keyset_id, values = batch.edge_record(row)
        labels = interner.labelset(labelset_id).labels
        keys = interner.keyset(keyset_id).keys
        facts[edge_id] = (src, tgt, labels, dict(zip(keys, values)))
    return facts


class TestRoundTrip:
    def test_content_exact_across_interner_lineages(self):
        registry = ShmBlockRegistry()
        source = Interner()
        original = sample_changeset(source)
        # A target whose id space diverged: same strings, different ids.
        target = Interner()
        for text in ("zzz", "Person", "yyy", "url"):
            target.intern_string(text)
        descriptor = encode_changeset_shm(original, registry)
        try:
            decoded = decode_changeset_shm(descriptor, target)
        finally:
            registry.release(descriptor.block)

        assert decoded.columnar.interner is target
        assert node_facts(decoded) == node_facts(original)
        assert edge_facts(decoded) == edge_facts(original)
        assert decoded.delete_nodes == original.delete_nodes
        assert decoded.delete_edges == original.delete_edges
        assert decoded.stub_node_ids == original.stub_node_ids
        assert len(registry) == 0
        assert shm_dir_names() == frozenset()

    def test_decoded_values_keep_python_types(self):
        registry = ShmBlockRegistry()
        original = sample_changeset(Interner())
        descriptor = encode_changeset_shm(original, registry)
        try:
            decoded = decode_changeset_shm(descriptor, Interner())
        finally:
            registry.release(descriptor.block)
        _, props = node_facts(decoded)["v1"]
        # Exact types, not numpy scalars: downstream shape classification
        # does type() lookups.
        assert type(props["age"]) is int
        assert type(props["score"]) is float
        assert type(props["active"]) is bool
        assert props["extra"] is None
        _, mixed = node_facts(decoded)["v2"]
        assert mixed["extra"] == [1, 2]

    def test_element_wise_changesets_are_rejected(self):
        with pytest.raises(ValueError, match="pickle handoff"):
            encode_changeset_shm(ChangeSet.deletions(nodes=["x"]))

    def test_descriptor_stays_small(self):
        interner = Interner()
        builder = BatchBuilder(interner)
        labels = interner.intern_labels(["Person"])
        keys = interner.intern_keys(["name", "rank"])
        for i in range(5000):
            builder.add_node(f"v{i}", labels, keys, (f"name-{i}", i))
        change_set = ChangeSet(columnar=builder.freeze())
        registry = ShmBlockRegistry()
        descriptor = encode_changeset_shm(change_set, registry)
        try:
            pickled = len(pickle.dumps(change_set, pickle.HIGHEST_PROTOCOL))
            # The descriptor is the whole executor-pipe payload; the rows
            # stay in the block.
            assert descriptor.wire_nbytes() < pickled / 10
            assert descriptor.nbytes > 0
        finally:
            registry.release(descriptor.block)


class TestRebase:
    def test_same_interner_is_identity(self):
        interner = Interner()
        change_set = sample_changeset(interner)
        assert rebase_changeset(change_set, interner) is change_set

    def test_no_columnar_payload_is_identity(self):
        change_set = ChangeSet.deletions(nodes=["x"])
        assert rebase_changeset(change_set, Interner()) is change_set

    def test_rebase_preserves_content(self):
        original = sample_changeset(Interner())
        target = Interner()
        target.intern_labels(["Decoy", "Person"])
        rebased = rebase_changeset(original, target)
        assert rebased.columnar.interner is target
        assert node_facts(rebased) == node_facts(original)
        assert edge_facts(rebased) == edge_facts(original)
        assert rebased.stub_node_ids == original.stub_node_ids


class TestBlockRegistry:
    def test_refcounts_hold_blocks_across_releases(self):
        registry = ShmBlockRegistry()
        block = registry.create(64)
        name = block.name
        assert registry.live_blocks() == (name,)
        registry.acquire(name)
        registry.release(name)
        # One reference still held: the segment must survive.
        assert registry.live_blocks() == (name,)
        assert name in shm_dir_names()
        registry.release(name)
        assert registry.live_blocks() == ()
        assert name not in shm_dir_names()

    def test_release_all_force_reclaims(self):
        registry = ShmBlockRegistry()
        names = [registry.create(32).name for _ in range(3)]
        registry.acquire(names[0])  # extra ref must not block reclamation
        registry.release_all()
        assert registry.live_blocks() == ()
        assert shm_dir_names().isdisjoint(names)

    def test_finalizer_reclaims_abandoned_registry(self):
        registry = ShmBlockRegistry()
        names = [registry.create(32).name for _ in range(2)]
        assert set(names) <= shm_dir_names()
        # Abandon the registry without releasing: the finalizers tied to
        # it must still unlink every block.
        del registry
        gc.collect()
        assert shm_dir_names().isdisjoint(names)

    def test_release_after_reclaim_is_a_noop(self):
        # Recovery paths may release twice; the second call must neither
        # raise nor touch other entries.
        registry = ShmBlockRegistry()
        name = registry.create(16).name
        survivor = registry.create(16).name
        registry.release(name)
        registry.release(name)
        assert registry.live_blocks() == (survivor,)
        registry.release_all()

    def test_acquire_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown"):
            ShmBlockRegistry().acquire("pghive-nope")

"""Unit tests for the end-to-end pipeline (Algorithm 1) on Figure 1."""

import pytest

from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.pipeline import CAPABILITIES, DiscoveryResult, PGHive
from repro.graph.store import GraphStore
from repro.schema.cardinality import Cardinality


@pytest.mark.parametrize("method", list(ClusteringMethod))
class TestFigure1Discovery:
    def discover(self, graph, method) -> DiscoveryResult:
        return PGHive(PGHiveConfig(method=method, seed=0)).discover(graph)

    def test_node_types_match_example(self, figure1_graph, method):
        schema = self.discover(figure1_graph, method).schema
        tokens = {t.token for t in schema.node_types()}
        assert tokens == {"Person", "Post", "Org.", "Place"}

    def test_unlabeled_alice_joins_person(self, figure1_graph, method):
        schema = self.discover(figure1_graph, method).schema
        person = schema.node_type_by_token("Person")
        assert "alice" in person.instance_ids  # Example 5

    def test_posts_merged_despite_structure(self, figure1_graph, method):
        schema = self.discover(figure1_graph, method).schema
        post = schema.node_type_by_token("Post")
        assert post.instance_ids == {"post1", "post2"}

    def test_edge_types_match_example(self, figure1_graph, method):
        schema = self.discover(figure1_graph, method).schema
        tokens = {t.token for t in schema.edge_types()}
        assert tokens == {"KNOWS", "LIKES", "WORKS_AT", "LOCATED_IN"}

    def test_constraints_match_example6(self, figure1_graph, method):
        schema = self.discover(figure1_graph, method).schema
        person = schema.node_type_by_token("Person")
        assert person.mandatory_keys() == {"name", "gender", "bday"}
        post = schema.node_type_by_token("Post")
        assert post.mandatory_keys() == frozenset()
        assert post.optional_keys() == {"imgFile", "content"}

    def test_cardinality_example8(self, figure1_graph, method):
        schema = self.discover(figure1_graph, method).schema
        works_at = schema.edge_type_by_token("WORKS_AT")
        # Only one person works here, so the sound upper bound is 0:1.
        assert works_at.cardinality in (
            Cardinality.ONE_TO_ONE,
            Cardinality.MANY_TO_ONE,
        )

    def test_assignments_cover_every_element(self, figure1_graph, method):
        result = self.discover(figure1_graph, method)
        assert set(result.node_assignments()) == set(figure1_graph.node_ids())
        assert set(result.edge_assignments()) == set(figure1_graph.edge_ids())

    def test_timer_stages_recorded(self, figure1_graph, method):
        result = self.discover(figure1_graph, method)
        for stage in ("preprocess", "clustering", "extraction", "postprocess"):
            assert result.timer.lap(stage) >= 0.0
        assert result.type_discovery_seconds <= result.elapsed_seconds


class TestPipelineOptions:
    def test_post_processing_disabled(self, figure1_graph):
        result = PGHive(PGHiveConfig(post_processing=False, seed=0)).discover(
            figure1_graph
        )
        person = result.schema.node_type_by_token("Person")
        assert person.properties["name"].data_type is None
        assert person.properties["name"].mandatory is None

    def test_accepts_graph_store(self, figure1_graph):
        store = GraphStore(figure1_graph)
        result = PGHive(PGHiveConfig(seed=0)).discover(store)
        assert result.schema.node_type_count == 4

    def test_schema_name(self, figure1_graph):
        result = PGHive(PGHiveConfig(seed=0)).discover(
            figure1_graph, schema_name="custom"
        )
        assert result.schema.name == "custom"

    def test_deterministic_under_seed(self, figure1_graph):
        first = PGHive(PGHiveConfig(seed=11)).discover(figure1_graph)
        second = PGHive(PGHiveConfig(seed=11)).discover(figure1_graph)
        assert first.node_assignments() == second.node_assignments()
        assert first.edge_assignments() == second.edge_assignments()

    def test_serialization_helpers(self, figure1_graph):
        result = PGHive(PGHiveConfig(seed=0)).discover(figure1_graph)
        assert "CREATE GRAPH TYPE" in result.to_pg_schema()
        assert result.to_xsd().startswith("<?xml")


class TestCapabilities:
    def test_table1_row(self):
        assert CAPABILITIES["label_independent"] is True
        assert CAPABILITIES["constraints"] is True
        assert CAPABILITIES["incremental"] is True
        assert "constraints" in CAPABILITIES["schema_elements"]

"""Unit tests for mandatory/optional property inference (section 4.4)."""

from repro.core.constraints import (
    infer_property_constraints,
    infer_type_constraints,
    property_frequency,
)
from repro.schema.model import NodeType, SchemaGraph


def typed(instances):
    """NodeType with given {instance_id: keys} recorded."""
    node_type = NodeType("n0", {"T"})
    for instance_id, keys in instances.items():
        node_type.record_instance(instance_id, keys)
    return node_type


class TestPropertyFrequency:
    def test_full_presence(self):
        node_type = typed({"a": {"x"}, "b": {"x"}})
        assert property_frequency(node_type, "x") == 1.0

    def test_partial_presence(self):
        node_type = typed({"a": {"x"}, "b": set(), "c": {"x"}, "d": set()})
        assert property_frequency(node_type, "x") == 0.5

    def test_empty_type(self):
        assert property_frequency(NodeType("n0"), "x") == 0.0


class TestInferTypeConstraints:
    def test_example6_semantics(self):
        # Every Person has name/gender/bday; only some Posts have imgFile.
        person = typed({"bob": {"name", "bday"}, "john": {"name", "bday"}})
        infer_type_constraints(person)
        assert person.properties["name"].mandatory is True
        assert person.properties["bday"].mandatory is True

        post = typed({"p1": {"imgFile"}, "p2": {"content"}})
        infer_type_constraints(post)
        assert post.properties["imgFile"].mandatory is False
        assert post.properties["content"].mandatory is False

    def test_soundness_guarantee(self):
        # Section 4.7: mandatory => present in every instance.
        node_type = typed(
            {"a": {"x", "y"}, "b": {"x"}, "c": {"x", "y", "z"}}
        )
        infer_type_constraints(node_type)
        for key in node_type.mandatory_keys():
            for _instance in node_type.instance_ids:
                assert node_type.property_counts[key] == node_type.instance_count

    def test_mandatory_and_optional_partition_keys(self):
        node_type = typed({"a": {"x", "y"}, "b": {"x"}})
        infer_type_constraints(node_type)
        assert node_type.mandatory_keys() == frozenset({"x"})
        assert node_type.optional_keys() == frozenset({"y"})


class TestSchemaLevel:
    def test_all_types_processed(self):
        schema = SchemaGraph()
        left = typed({"a": {"x"}})
        right = NodeType("n1", {"U"})
        right.record_instance("b", {"y"})
        right.record_instance("c", set())
        schema.add_node_type(left)
        right.type_id = "n1"
        schema.add_node_type(right)
        infer_property_constraints(schema)
        assert left.properties["x"].mandatory is True
        assert right.properties["y"].mandatory is False

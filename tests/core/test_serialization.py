"""Unit tests for PG-Schema / XSD serialisation (section 4.5)."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.core.serialization import to_pg_schema, to_xsd
from repro.schema.validation import ValidationMode


@pytest.fixture(scope="module")
def discovered(request):
    from tests.conftest import build_figure1_graph

    graph = build_figure1_graph()
    return PGHive(PGHiveConfig(seed=0)).discover(graph), graph


class TestPGSchemaText:
    def test_strict_contains_datatypes_and_constraints(self, discovered):
        result, _ = discovered
        text = to_pg_schema(result.schema, ValidationMode.STRICT)
        assert text.startswith("CREATE GRAPH TYPE")
        assert "STRICT" in text
        assert "MANDATORY" in text
        assert "OPTIONAL" in text
        assert "DATE" in text
        assert "cardinality" in text

    def test_loose_omits_datatypes(self, discovered):
        result, _ = discovered
        text = to_pg_schema(result.schema, ValidationMode.LOOSE)
        assert "LOOSE" in text
        assert "MANDATORY" not in text
        assert "STRING" not in text

    def test_every_type_rendered(self, discovered):
        result, _ = discovered
        text = to_pg_schema(result.schema, ValidationMode.STRICT)
        for node_type in result.schema.node_types():
            assert node_type.type_id in text
        for edge_type in result.schema.edge_types():
            assert edge_type.type_id in text

    def test_edge_endpoints_rendered(self, discovered):
        result, _ = discovered
        text = to_pg_schema(result.schema, ValidationMode.STRICT)
        assert "(:Person)-[" in text
        assert "]->(:Org.)" in text

    def test_abstract_marker(self):
        from repro.schema.model import NodeType, SchemaGraph

        schema = SchemaGraph("s")
        schema.add_node_type(NodeType("n0", (), abstract=True))
        assert "ABSTRACT" in to_pg_schema(schema)

    def test_unlabeled_endpoint_rendered_as_placeholder(self):
        from repro.schema.model import EdgeType, SchemaGraph

        schema = SchemaGraph("s")
        edge_type = EdgeType("e0", {"R"})
        edge_type.record_endpoints("", "Person")
        schema.add_edge_type(edge_type)
        assert "_unlabeled_" in to_pg_schema(schema)


class TestXSD:
    def test_output_is_wellformed_xml(self, discovered):
        result, _ = discovered
        root = ElementTree.fromstring(to_xsd(result.schema))
        assert root.tag.endswith("schema")

    def test_complex_types_per_schema_type(self, discovered):
        result, _ = discovered
        root = ElementTree.fromstring(to_xsd(result.schema))
        complex_types = root.findall(
            "{http://www.w3.org/2001/XMLSchema}complexType"
        )
        expected = result.schema.node_type_count + result.schema.edge_type_count
        assert len(complex_types) == expected

    def test_mandatory_min_occurs(self, discovered):
        result, _ = discovered
        xsd = to_xsd(result.schema)
        root = ElementTree.fromstring(xsd)
        namespace = "{http://www.w3.org/2001/XMLSchema}"
        person = next(
            t
            for t in root.findall(f"{namespace}complexType")
            if t.get("name") == "node_Person"
        )
        elements = person.find(f"{namespace}all").findall(f"{namespace}element")
        by_name = {e.get("name"): e for e in elements}
        assert by_name["name"].get("minOccurs") == "1"
        assert by_name["name"].get("type") == "xs:string"
        assert by_name["bday"].get("type") == "xs:date"

    def test_special_characters_escaped(self):
        from repro.schema.model import NodeType, SchemaGraph

        schema = SchemaGraph('weird "name" <&>')
        node_type = NodeType("n0", {"A<B"})
        node_type.ensure_property('k"ey')
        schema.add_node_type(node_type)
        root = ElementTree.fromstring(to_xsd(schema))  # must not raise
        assert root is not None

"""Unit tests for adaptive LSH parameterization (section 4.2)."""

import numpy as np
import pytest

from repro.core.adaptive import (
    MAX_TABLES,
    adapt_parameters,
    alpha_for_label_count,
    estimate_distance_scale,
)
from repro.core.config import AdaptiveOverrides


class TestAlphaHeuristic:
    @pytest.mark.parametrize(
        "label_count,expected",
        [(0, 0.8), (1, 0.8), (3, 0.8), (4, 1.0), (10, 1.0), (11, 1.5), (100, 1.5)],
    )
    def test_paper_brackets(self, label_count, expected):
        assert alpha_for_label_count(label_count) == expected


class TestDistanceScale:
    def test_known_configuration(self):
        rng = np.random.default_rng(0)
        # Two points at distance 2: mean pairwise distance must be 2.
        vectors = np.array([[0.0, 0.0], [2.0, 0.0]])
        assert estimate_distance_scale(vectors, rng) == pytest.approx(2.0)

    def test_single_point_is_zero(self):
        rng = np.random.default_rng(0)
        assert estimate_distance_scale(np.ones((1, 3)), rng) == 0.0

    def test_identical_points_zero(self):
        rng = np.random.default_rng(0)
        assert estimate_distance_scale(np.ones((50, 3)), rng) == 0.0

    def test_scale_grows_with_spread(self):
        rng = np.random.default_rng(0)
        tight = rng.normal(0, 0.1, (500, 4))
        wide = rng.normal(0, 10.0, (500, 4))
        assert estimate_distance_scale(
            wide, np.random.default_rng(1)
        ) > estimate_distance_scale(tight, np.random.default_rng(1))


class TestAdaptParameters:
    def make_vectors(self, count=300, seed=0):
        return np.random.default_rng(seed).normal(0, 1.0, (count, 6))

    def test_bucket_length_is_1_2_mu_alpha(self):
        vectors = self.make_vectors()
        params = adapt_parameters(vectors, label_count=5, kind="nodes", seed=1)
        assert params.alpha == 1.0
        assert params.bucket_length == pytest.approx(1.2 * params.mu, rel=1e-9)
        assert params.b_base == pytest.approx(1.2 * params.mu, rel=1e-9)

    def test_alpha_scales_bucket(self):
        vectors = self.make_vectors()
        few = adapt_parameters(vectors, label_count=2, kind="nodes", seed=1)
        many = adapt_parameters(vectors, label_count=20, kind="nodes", seed=1)
        assert few.alpha == 0.8 and many.alpha == 1.5
        assert many.bucket_length > few.bucket_length

    def test_tables_clamped(self):
        vectors = self.make_vectors()
        params = adapt_parameters(vectors, label_count=5, kind="nodes", seed=1)
        assert 1 <= params.num_tables <= MAX_TABLES

    def test_edges_use_lower_floor(self):
        vectors = self.make_vectors()
        nodes = adapt_parameters(vectors, label_count=5, kind="nodes", seed=1)
        edges = adapt_parameters(vectors, label_count=5, kind="edges", seed=1)
        assert edges.num_tables <= nodes.num_tables

    def test_overrides_win(self):
        vectors = self.make_vectors()
        overrides = AdaptiveOverrides(bucket_length=9.0, num_tables=7, alpha=2.0)
        params = adapt_parameters(
            vectors, label_count=5, kind="nodes", overrides=overrides, seed=1
        )
        assert params.bucket_length == 9.0
        assert params.num_tables == 7
        assert params.alpha == 2.0

    def test_alpha_override_feeds_heuristic_bucket(self):
        vectors = self.make_vectors()
        overrides = AdaptiveOverrides(alpha=2.0)
        params = adapt_parameters(
            vectors, label_count=5, kind="nodes", overrides=overrides, seed=1
        )
        assert params.bucket_length == pytest.approx(params.b_base * 2.0)

    def test_degenerate_vectors_yield_usable_bucket(self):
        vectors = np.zeros((100, 4))
        params = adapt_parameters(vectors, label_count=1, kind="nodes", seed=1)
        assert params.bucket_length > 0

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            adapt_parameters(self.make_vectors(), 3, kind="hyperedges")

    def test_describe_mentions_parameters(self):
        params = adapt_parameters(self.make_vectors(), 3, kind="nodes")
        text = params.describe()
        assert "b=" in text and "T=" in text

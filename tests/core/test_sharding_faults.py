"""Worker fault tolerance for parallel sharded sessions.

The contract: a SIGKILLed worker never surfaces a raw
``BrokenProcessPool``.  The shard retries on a restarted pool (bounded
backoff), and when restarts are exhausted it degrades to in-process
serial execution with a structured :class:`DegradedModeWarning` --
results stay fingerprint-identical to the serial oracle either way.
"""

import warnings

import pytest

from repro.core.config import PGHiveConfig
from repro.core.faults import FaultInjector
from repro.core.session import SchemaSession
from repro.core.sharding import ShardedSchemaSession
from repro.errors import DegradedModeWarning
from repro.graph.changes import ChangeSet
from repro.graph.model import Edge, Node
from repro.schema.model import schema_fingerprint

CONFIG = PGHiveConfig(seed=0, infer_keys=True)


def change_feed(rounds=6):
    feed = []
    for round_ in range(rounds):
        nodes = [
            Node(f"n{round_}-{i}", {"Person" if i % 2 else "City"},
                 {"p": i, "tag": f"t{round_}"})
            for i in range(5)
        ]
        edges = [
            Edge(f"e{round_}-{i}", nodes[i].node_id, nodes[i + 1].node_id,
                 {"KNOWS"}, {"w": i})
            for i in range(4)
        ]
        feed.append(ChangeSet.inserts(nodes, edges))
    return feed


def oracle_fingerprint(feed):
    session = SchemaSession(CONFIG, schema_name="s")
    for change_set in feed:
        session.apply(change_set)
    return schema_fingerprint(session.schema())


class TestWorkerDeath:
    def test_killed_worker_retries_without_surfacing(self):
        feed = change_feed()
        session = ShardedSchemaSession(
            CONFIG,
            schema_name="s",
            n_shards=2,
            parallel=True,
            retry_backoff=0.01,
        )
        try:
            for index, change_set in enumerate(feed):
                if index == 2:
                    FaultInjector.kill_process(session.worker_pids()[0])
                    assert session.fault_events == []
                # No BrokenProcessPool may escape; warnings are errors here.
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    session.apply(change_set)
            assert [e.kind for e in session.fault_events] == ["retry"]
            assert session.fault_events[0].shard == 0
            assert session.degraded_shards == []
            assert schema_fingerprint(session.schema()) == oracle_fingerprint(
                feed
            )
        finally:
            session.close()

    def test_exhausted_retries_degrade_with_warning(self):
        feed = change_feed()
        session = ShardedSchemaSession(
            CONFIG,
            schema_name="s",
            n_shards=2,
            parallel=True,
            max_shard_retries=0,
            retry_backoff=0.01,
        )
        try:
            for index, change_set in enumerate(feed):
                if index == 3:
                    for pid in session.worker_pids().values():
                        FaultInjector.kill_process(pid)
                    with pytest.warns(DegradedModeWarning, match="in-process"):
                        session.apply(change_set)
                else:
                    session.apply(change_set)
            assert session.degraded_shards == [0, 1]
            degraded = [
                e for e in session.fault_events if e.kind == "degraded"
            ]
            assert len(degraded) == 2
            # Degraded shards keep accepting work and the result is exact.
            assert schema_fingerprint(session.schema()) == oracle_fingerprint(
                feed
            )
        finally:
            session.close()

    def test_state_reads_survive_worker_death(self):
        feed = change_feed()
        session = ShardedSchemaSession(
            CONFIG,
            schema_name="s",
            n_shards=2,
            parallel=True,
            retry_backoff=0.01,
        )
        try:
            for change_set in feed[:3]:
                session.apply(change_set)
            # Kill between apply and the merged-state read: the state
            # fetch itself must retry/restart, not raise.
            for pid in session.worker_pids().values():
                FaultInjector.kill_process(pid)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                schema = session.schema()
            assert schema.node_type_by_token("Person") is not None
            assert all(e.kind == "retry" for e in session.fault_events)
        finally:
            session.close()

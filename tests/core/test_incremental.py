"""Unit tests for incremental discovery (section 4.6)."""

import pytest

from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.incremental import IncrementalSchemaDiscovery
from repro.core.pipeline import PGHive
from repro.graph.batching import split_into_batches
from repro.schema.model import subsumes


@pytest.mark.parametrize("method", list(ClusteringMethod))
class TestIncrementalDiscovery:
    def test_matches_static_type_inventory(self, figure1_graph, method):
        config = PGHiveConfig(method=method, seed=0)
        static = PGHive(config).discover(figure1_graph)
        batches = split_into_batches(figure1_graph, 3, seed=4)
        incremental = PGHive(config).discover_incremental(batches)
        static_tokens = {t.token for t in static.schema.node_types()}
        incremental_tokens = {t.token for t in incremental.schema.node_types()}
        assert incremental_tokens == static_tokens
        static_edge_tokens = {t.token for t in static.schema.edge_types()}
        incremental_edge_tokens = {
            t.token for t in incremental.schema.edge_types()
        }
        assert incremental_edge_tokens == static_edge_tokens

    def test_monotone_chain(self, figure1_graph, method):
        # Section 4.6: S_i is subsumed by S_{i+1} for every batch i.
        config = PGHiveConfig(method=method, seed=0, post_processing=False)
        engine = IncrementalSchemaDiscovery(config)
        snapshots = []
        for batch in split_into_batches(figure1_graph, 4, seed=1):
            engine.add_batch(batch)
            snapshots.append(engine.schema.copy())
        for earlier, later in zip(snapshots, snapshots[1:]):
            assert subsumes(later, earlier)

    def test_batch_reports(self, figure1_graph, method):
        config = PGHiveConfig(method=method, seed=0)
        engine = IncrementalSchemaDiscovery(config)
        batches = split_into_batches(figure1_graph, 3, seed=2)
        for index, batch in enumerate(batches, start=1):
            report = engine.add_batch(batch)
            assert report.batch_index == index
            assert report.seconds >= 0.0
            assert report.nodes == batch.node_count
        result = engine.finalize()
        assert result.batches_processed == 3
        assert len(result.batch_seconds) == 3


class TestPostProcessingSchedule:
    def test_final_only_by_default(self, figure1_graph):
        config = PGHiveConfig(seed=0)
        engine = IncrementalSchemaDiscovery(config)
        batches = split_into_batches(figure1_graph, 2, seed=3)
        engine.add_batch(batches[0])
        mid_types = list(engine.schema.node_types())
        # Before finalize, datatypes are still unset.
        assert all(
            spec.data_type is None
            for node_type in mid_types
            for spec in node_type.properties.values()
        )
        engine.add_batch(batches[1])
        result = engine.finalize()
        person = result.schema.node_type_by_token("Person")
        assert person.properties["name"].data_type is not None

    def test_per_batch_post_processing_flag(self, figure1_graph):
        config = PGHiveConfig(seed=0, post_process_each_batch=True)
        engine = IncrementalSchemaDiscovery(config)
        batches = split_into_batches(figure1_graph, 2, seed=3)
        engine.add_batch(batches[0])
        has_any_datatype = any(
            spec.data_type is not None
            for node_type in engine.schema.node_types()
            for spec in node_type.properties.values()
        )
        assert has_any_datatype

    def test_constraints_computed_over_union(self, figure1_graph):
        # Post-processing must see all batches: name is mandatory on Person
        # across the union even if one batch held only part of the data.
        config = PGHiveConfig(seed=0)
        batches = split_into_batches(figure1_graph, 3, seed=5)
        result = PGHive(config).discover_incremental(batches)
        person = result.schema.node_type_by_token("Person")
        assert "name" in person.mandatory_keys()

"""Regression: a rejected change-set leaves the coordinator untouched.

PGL802 flagged the original ordering in ``ShardedSchemaSession.apply``:
the node registry was seeded and the interner pinned *before*
partitioning/dispatch, so a change-set rejected mid-way (e.g. a dangling
edge) left ghost registry entries and a poisoned pin behind -- the same
bug class as PR 7's rejected-changeset poisoning.  These tests pin the
compensating rollback.
"""

import pytest

from repro.core.config import PGHiveConfig
from repro.core.sharding import ShardedSchemaSession
from repro.errors import DanglingEdgeError
from repro.graph.changes import ChangeSet
from repro.graph.model import Edge, Node

from tests.core.test_sharding import feed


def _bad_change_set() -> ChangeSet:
    return ChangeSet.inserts(
        nodes=[Node("vX", {"Person"}, {"person_id": 99})],
        edges=[Edge("rX", "vX", "missing-node", {"R"}, {})],
    )


def test_rejected_changeset_rolls_back_coordinator_state():
    session = ShardedSchemaSession(
        PGHiveConfig(seed=1), n_shards=2, retain_union=True
    )
    session.apply(feed(1)[0])
    sequence = session.sequence
    registry_before = dict(session._registry)
    pinned_before = session._interner_pinned

    with pytest.raises(DanglingEdgeError):
        session.apply(_bad_change_set())

    # As if the batch never happened: no ghost registry entries, no
    # sequence bump, no report, no interner pin.
    assert "vX" not in session._registry
    assert session._registry == registry_before
    assert session.sequence == sequence
    assert len(session.reports) == sequence
    assert session._interner_pinned == pinned_before


def test_session_stays_usable_after_rejection():
    session = ShardedSchemaSession(
        PGHiveConfig(seed=1), n_shards=2, retain_union=True
    )
    change_sets = feed(2)
    session.apply(change_sets[0])
    with pytest.raises(DanglingEdgeError):
        session.apply(_bad_change_set())
    report = session.apply(change_sets[1])
    assert report.sequence == 2
    # The rejected batch's nodes are gone; the healthy batches' survive.
    assert all(
        node.node_id in session._registry for node in change_sets[1].nodes
    )


def test_rejected_deletions_do_not_commit():
    session = ShardedSchemaSession(
        PGHiveConfig(seed=1), n_shards=2, retain_union=True
    )
    session.apply(feed(1)[0])
    target = next(iter(session._registry))
    mixed = ChangeSet(
        nodes=(),
        edges=(Edge("rX", "vX", "missing-node", {"R"}, {}),),
        delete_nodes=frozenset({target}),
    )
    with pytest.raises(DanglingEdgeError):
        session.apply(mixed)
    # The union registry still holds the node the rejected batch asked
    # to delete: deletions commit only after dispatch succeeds.
    assert target in session._registry

"""Unit tests for cardinality inference (section 4.4, Example 8)."""

from repro.core.cardinality_inference import bounds_for_edge_type, compute_cardinalities
from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.graph.model import Edge, Node, PropertyGraph
from repro.schema.cardinality import Cardinality
from repro.schema.model import EdgeType


def star_graph(fan: int) -> PropertyGraph:
    """One hub with ``fan`` spokes: WORKS_AT(spoke -> hub)."""
    graph = PropertyGraph()
    graph.add_node(Node("hub", {"Org"}))
    for i in range(fan):
        graph.add_node(Node(f"p{i}", {"Person"}))
        graph.add_edge(Edge(f"e{i}", f"p{i}", "hub", {"WORKS_AT"}))
    return graph


class TestBoundsForEdgeType:
    def test_star_is_many_to_one(self):
        graph = star_graph(5)
        edge_type = EdgeType("e0", {"WORKS_AT"})
        for i in range(5):
            edge_type.record_instance(f"e{i}", ())
        bounds = bounds_for_edge_type(graph, edge_type)
        assert bounds.max_out == 1
        assert bounds.max_in == 5
        assert bounds.classify() is Cardinality.MANY_TO_ONE

    def test_distinct_endpoint_counting(self):
        # Parallel edges to the same target count once (distinct targets).
        graph = PropertyGraph()
        graph.add_node(Node("a"))
        graph.add_node(Node("b"))
        graph.add_edge(Edge("e1", "a", "b", {"R"}))
        graph.add_edge(Edge("e2", "a", "b", {"R"}))
        edge_type = EdgeType("e0", {"R"})
        edge_type.record_instance("e1", ())
        edge_type.record_instance("e2", ())
        bounds = bounds_for_edge_type(graph, edge_type)
        assert bounds.max_out == 1
        assert bounds.max_in == 1

    def test_empty_type(self):
        graph = star_graph(1)
        edge_type = EdgeType("e0", {"GHOST"})
        bounds = bounds_for_edge_type(graph, edge_type)
        assert bounds.max_out == 0 and bounds.max_in == 0


class TestPipelineCardinalities:
    def test_figure1_example8(self, figure1_graph):
        result = PGHive(PGHiveConfig(seed=0)).discover(figure1_graph)
        schema = result.schema
        likes = schema.edge_type_by_token("LIKES")
        assert likes.cardinality is Cardinality.ONE_TO_ONE  # 1 like each here
        knows = schema.edge_type_by_token("KNOWS")
        # john is known by both alice and bob -> N:1 upper bound.
        assert knows.cardinality is Cardinality.MANY_TO_ONE

    def test_compute_cardinalities_covers_all_types(self, figure1_graph):
        result = PGHive(PGHiveConfig(seed=0, post_processing=False)).discover(
            figure1_graph
        )
        compute_cardinalities(result.schema, figure1_graph)
        for edge_type in result.schema.edge_types():
            assert edge_type.cardinality is not None
            assert edge_type.cardinality_bounds is not None

    def test_upper_bound_guarantee(self, figure1_graph):
        # Section 4.7: recorded maxima are true upper bounds over instances.
        result = PGHive(PGHiveConfig(seed=0)).discover(figure1_graph)
        for edge_type in result.schema.edge_types():
            recomputed = bounds_for_edge_type(figure1_graph, edge_type)
            assert edge_type.cardinality_bounds == recomputed

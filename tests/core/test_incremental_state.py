"""Cross-batch persistent-state tests for the incremental engine.

The engine must keep one fitted preprocessor and one set of MinHash
signature caches alive across ``add_batch`` calls (instead of rebuilding
them per batch) *without* changing what schema comes out.
"""

import pytest

from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.incremental import IncrementalSchemaDiscovery
from repro.core.pipeline import PGHive, PipelineState
from repro.graph.batching import split_into_batches


@pytest.fixture
def batches(figure1_graph):
    return split_into_batches(figure1_graph, 3, seed=4)


class TestStatePersistence:
    def test_preprocessor_fitted_once_and_reused(self, batches):
        engine = IncrementalSchemaDiscovery(PGHiveConfig(seed=0))
        engine.add_batch(batches[0])
        preprocessor = engine.state.preprocessor
        assert preprocessor is not None
        model = preprocessor.model
        for batch in batches[1:]:
            engine.add_batch(batch)
            assert engine.state.preprocessor is preprocessor
            assert engine.state.preprocessor.model is model

    def test_minhash_signature_cache_survives_batches(self, batches):
        from repro.core.config import AdaptiveOverrides

        # Pin num_tables so every batch maps to the same cache key and the
        # one MinHashLSH instance accumulates patterns across the stream.
        config = PGHiveConfig(
            method=ClusteringMethod.MINHASH,
            seed=0,
            node_lsh=AdaptiveOverrides(num_tables=8),
            edge_lsh=AdaptiveOverrides(num_tables=8),
        )
        engine = IncrementalSchemaDiscovery(config)
        sizes: list[int] = []
        instances: set[int] = set()
        for batch in batches:
            engine.add_batch(batch)
            instances.update(id(lsh) for lsh in engine.state.minhash_cache.values())
            sizes.append(
                sum(
                    len(lsh._signature_cache)
                    for lsh in engine.state.minhash_cache.values()
                )
            )
        # One instance per kind for the whole stream, never rebuilt.
        assert len(instances) <= 2
        assert sizes[-1] > 0
        # Monotone: later batches only ever add patterns.
        assert all(later >= earlier for earlier, later in zip(sizes, sizes[1:]))

    def test_embedding_cache_grows_not_resets(self, batches):
        engine = IncrementalSchemaDiscovery(PGHiveConfig(seed=0))
        seen: list[set[str]] = []
        for batch in batches:
            engine.add_batch(batch)
            seen.append(set(engine.state.preprocessor._embedding_cache))
        assert seen[-1]
        assert all(earlier <= later for earlier, later in zip(seen, seen[1:]))

    @pytest.mark.parametrize("method", list(ClusteringMethod))
    def test_persistent_state_schema_matches_stateless(
        self, figure1_graph, method
    ):
        # Same stream through the stateful engine and through per-batch
        # fresh state must agree on the discovered type inventory.
        config = PGHiveConfig(method=method, seed=0)
        stream = split_into_batches(figure1_graph, 3, seed=4)

        engine = IncrementalSchemaDiscovery(config)
        for batch in stream:
            engine.add_batch(batch)
        stateful = engine.finalize()

        pipeline = PGHive(config)
        from repro.core.pipeline import DiscoveryResult
        from repro.schema.model import SchemaGraph
        from repro.util import Timer

        schema = SchemaGraph("stateless")
        timer = Timer()
        result = DiscoveryResult(schema=schema, timer=timer, config=config)
        for batch in stream:
            pipeline._process_batch(batch, schema, timer, result, None)

        assert {t.token for t in stateful.schema.node_types()} == {
            t.token for t in schema.node_types()
        }
        assert {t.token for t in stateful.schema.edge_types()} == {
            t.token for t in schema.edge_types()
        }

    def test_static_discovery_uses_fresh_state(self, figure1_graph):
        # Two static runs over the same pipeline object must not leak
        # state into each other.
        pipeline = PGHive(PGHiveConfig(seed=0))
        first = pipeline.discover(figure1_graph)
        second = pipeline.discover(figure1_graph)
        assert {t.token for t in first.schema.node_types()} == {
            t.token for t in second.schema.node_types()
        }

    def test_state_dataclass_defaults(self):
        state = PipelineState()
        assert state.preprocessor is None
        assert state.minhash_cache == {}

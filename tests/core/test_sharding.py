"""Unit tests for the sharded session: partitioning, stubs, dirty
tracking, per-shard checkpoint manifests, and process-parallel mode."""

import pytest

from repro.core.config import PGHiveConfig
from repro.core.session import SchemaSession
from repro.core.sharding import ShardedSchemaSession
from repro.errors import CheckpointError, ConfigurationError, DanglingEdgeError
from repro.graph.changes import ChangeSet, HashPartitioner, stable_shard
from repro.graph.model import Edge, Node, PropertyGraph
from repro.schema.model import schema_fingerprint

LABELS = ["Person", "Org", "Post"]


def labelled_node(serial: int) -> Node:
    label = LABELS[serial % len(LABELS)]
    return Node(
        f"v{serial}",
        {label},
        {f"{label.lower()}_id": serial, "name": f"n{serial}"},
    )


def feed(change_set_count: int = 5, nodes_per_set: int = 4):
    """Insert-only change-sets with cross-change-set edges."""
    change_sets = []
    nodes: list[Node] = []
    edge_serial = 0
    for index in range(change_set_count):
        fresh = [
            labelled_node(index * nodes_per_set + offset)
            for offset in range(nodes_per_set)
        ]
        nodes.extend(fresh)
        edges = []
        for _ in range(3):
            source = nodes[(edge_serial * 7) % len(nodes)]
            target = nodes[(edge_serial * 3 + 1) % len(nodes)]
            label = f"R_{sorted(source.labels)[0]}_{sorted(target.labels)[0]}"
            edges.append(
                Edge(
                    f"r{edge_serial}",
                    source.node_id,
                    target.node_id,
                    {label},
                    {"w": edge_serial % 3},
                )
            )
            edge_serial += 1
        change_sets.append(ChangeSet.inserts(nodes=fresh, edges=edges))
    return change_sets


class TestStableShard:
    def test_deterministic_and_in_range(self):
        for n_shards in (1, 2, 5):
            for element_id in ("a", "v12", "edge:9"):
                shard = stable_shard(element_id, n_shards)
                assert shard == stable_shard(element_id, n_shards)
                assert 0 <= shard < n_shards

    def test_single_shard_routes_everything_to_zero(self):
        assert all(stable_shard(f"x{i}", 1) == 0 for i in range(20))


class TestHashPartitioner:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            HashPartitioner(0)

    def test_every_element_lands_on_exactly_one_shard(self):
        partitioner = HashPartitioner(4)
        change_set = feed(1, 8)[0]
        parts = partitioner.partition(change_set)
        fresh_nodes = [
            node.node_id
            for part in parts.values()
            for node in part.nodes
            if node.node_id not in part.stub_node_ids
        ]
        edges = [e.edge_id for part in parts.values() for e in part.edges]
        assert sorted(fresh_nodes) == sorted(n.node_id for n in change_set.nodes)
        assert sorted(edges) == sorted(e.edge_id for e in change_set.edges)

    def test_cross_shard_edges_ship_marked_stubs(self):
        partitioner = HashPartitioner(3)
        change_set = feed(1, 9)[0]
        parts = partitioner.partition(change_set)
        for index, part in parts.items():
            shipped = {node.node_id for node in part.nodes}
            for edge in part.edges:
                assert set(edge.endpoints()) <= shipped
            for stub_id in part.stub_node_ids:
                # A stub is a node owned by a different shard.
                assert partitioner.shard_of(stub_id) != index

    def test_stub_resolution_uses_node_lookup(self):
        partitioner = HashPartitioner(2)
        older = labelled_node(0)
        edge = Edge("r0", older.node_id, older.node_id, {"R"})
        parts = partitioner.partition(
            ChangeSet.inserts(edges=[edge]), {older.node_id: older}
        )
        (part,) = parts.values()
        assert part.stub_node_ids == {older.node_id}
        with pytest.raises(DanglingEdgeError):
            partitioner.partition(ChangeSet.inserts(edges=[edge]), {})

    def test_node_deletions_broadcast_edge_deletions_route(self):
        partitioner = HashPartitioner(3)
        parts = partitioner.partition(
            ChangeSet.deletions(nodes=["v1"], edges=["r1"])
        )
        with_node_delete = [i for i, p in parts.items() if p.delete_nodes]
        with_edge_delete = [i for i, p in parts.items() if p.delete_edges]
        assert with_node_delete == [0, 1, 2]
        assert with_edge_delete == [partitioner.shard_of("r1")]


class TestShardedSession:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            ShardedSchemaSession(n_shards=0)
        with pytest.raises(ConfigurationError):
            ShardedSchemaSession(streaming_postprocess=False)
        session = ShardedSchemaSession(n_shards=2)
        with pytest.raises(ConfigurationError):
            session.apply(ChangeSet.deletions(nodes=["v0"]))

    def test_report_counts_are_global(self):
        config = PGHiveConfig(seed=1)
        session = ShardedSchemaSession(config, n_shards=3, retain_union=True)
        for change_set in feed(3):
            report = session.apply(change_set)
            assert report.nodes_inserted == len(change_set.nodes)
            assert report.edges_inserted == len(change_set.edges)
        report = session.apply(ChangeSet.deletions(nodes=["v0", "ghost"]))
        # One node deleted globally, even though stub copies were removed
        # from several shards; ghosts count zero.
        assert report.nodes_deleted == 1
        assert session.sequence == 4
        assert len(session.reports) == 4

    def test_dirty_tracking_caches_merged_reads(self):
        config = PGHiveConfig(seed=1)
        session = ShardedSchemaSession(config, n_shards=2)
        change_sets = feed(2)
        session.apply(change_sets[0])
        assert session.dirty
        first = session.schema()
        assert not session.dirty
        assert session.schema() is first  # quiet feed: cached object
        session.apply(change_sets[1])
        assert session.dirty
        second = session.schema()
        assert second is not first  # merged schema is a value, not a view

    def test_only_dirty_shards_are_refetched(self):
        config = PGHiveConfig(seed=1)
        session = ShardedSchemaSession(config, n_shards=4)
        session.apply(feed(1)[0])
        session.schema()
        cached = list(session._shard_states)
        # A change-set touching one shard only invalidates that shard.
        lonely = labelled_node(99)
        target_shard = session._partitioner.shard_of(lonely.node_id)
        session.apply(ChangeSet.inserts(nodes=[lonely]))
        assert session._shard_dirty[target_shard]
        untouched = [
            index for index in range(4) if index != target_shard
        ]
        session.schema()
        for index in untouched:
            assert session._shard_states[index] is cached[index]

    def test_add_batch_matches_apply_from_graph(self):
        config = PGHiveConfig(seed=1)
        batch = PropertyGraph("b")
        for serial in range(6):
            batch.add_node(labelled_node(serial))
        by_batch = ShardedSchemaSession(config, n_shards=2)
        by_batch.add_batch(batch)
        by_change = ShardedSchemaSession(config, n_shards=2)
        by_change.apply(ChangeSet.from_graph(batch))
        assert schema_fingerprint(by_batch.schema()) == schema_fingerprint(
            by_change.schema()
        )

    def test_matches_single_session_on_insert_feed(self):
        config = PGHiveConfig(seed=1, infer_keys=True)
        single = SchemaSession(config, retain_union=True)
        sharded = ShardedSchemaSession(config, n_shards=3, retain_union=True)
        for change_set in feed(4):
            single.apply(change_set)
            sharded.apply(change_set)
        assert schema_fingerprint(sharded.schema()) == schema_fingerprint(
            single.schema()
        )

    def test_shard_sessions_unavailable_in_parallel_mode(self):
        session = ShardedSchemaSession(n_shards=2, parallel=True)
        with pytest.raises(ConfigurationError):
            session.shard_sessions
        session.close()


class TestShardedCheckpoint:
    def test_round_trip_and_continuation(self, tmp_path):
        config = PGHiveConfig(seed=5, infer_keys=True)
        change_sets = feed(4)
        session = ShardedSchemaSession(config, n_shards=3)
        for change_set in change_sets[:2]:
            session.apply(change_set)
        directory = session.checkpoint(tmp_path / "ck")
        assert (directory / "manifest.ckpt").exists()
        assert sorted(p.name for p in directory.glob("shard-*.ckpt")) == [
            "shard-000.ckpt",
            "shard-001.ckpt",
            "shard-002.ckpt",
        ]
        resumed = ShardedSchemaSession.restore(directory)
        assert resumed.sequence == session.sequence
        assert schema_fingerprint(resumed.schema()) == schema_fingerprint(
            session.schema()
        )
        for change_set in change_sets[2:]:
            session.apply(change_set)
            resumed.apply(change_set)
        assert schema_fingerprint(resumed.schema()) == schema_fingerprint(
            session.schema()
        )

    def test_manifest_validation(self, tmp_path):
        with pytest.raises(CheckpointError):
            ShardedSchemaSession.restore(tmp_path / "missing")
        bogus = tmp_path / "bogus"
        bogus.mkdir()
        (bogus / "manifest.ckpt").write_bytes(b"not a manifest\n")
        with pytest.raises(CheckpointError):
            ShardedSchemaSession.restore(bogus)

    def test_per_shard_files_are_plain_session_checkpoints(self, tmp_path):
        config = PGHiveConfig(seed=5)
        session = ShardedSchemaSession(config, n_shards=2)
        session.apply(feed(1)[0])
        directory = session.checkpoint(tmp_path / "ck")
        shard = SchemaSession.restore(directory / "shard-000.ckpt")
        assert schema_fingerprint(shard.schema_graph) == schema_fingerprint(
            session.shard_sessions[0].schema_graph
        )


class TestParallelMode:
    def test_parallel_matches_serial(self):
        config = PGHiveConfig(seed=2, infer_keys=True)
        change_sets = feed(3)
        serial = ShardedSchemaSession(config, n_shards=2)
        for change_set in change_sets:
            serial.apply(change_set)
        with ShardedSchemaSession(config, n_shards=2, parallel=True) as parallel:
            for change_set in change_sets:
                parallel.apply(change_set)
            assert schema_fingerprint(parallel.schema()) == schema_fingerprint(
                serial.schema()
            )

    def test_parallel_checkpoint_restores_serially(self, tmp_path):
        config = PGHiveConfig(seed=2)
        change_sets = feed(2)
        with ShardedSchemaSession(config, n_shards=2, parallel=True) as session:
            for change_set in change_sets:
                session.apply(change_set)
            directory = session.checkpoint(tmp_path / "ck")
            expected = schema_fingerprint(session.schema())
        resumed = ShardedSchemaSession.restore(directory, parallel=False)
        assert not resumed.parallel
        assert schema_fingerprint(resumed.schema()) == expected

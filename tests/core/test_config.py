"""Unit tests for PG-HIVE configuration validation."""

import pytest

from repro.core.config import AdaptiveOverrides, ClusteringMethod, PGHiveConfig
from repro.errors import ConfigurationError


class TestPGHiveConfig:
    def test_defaults_match_paper(self):
        config = PGHiveConfig()
        assert config.theta == 0.9  # Algorithm 1 default
        assert config.method is ClusteringMethod.ELSH
        assert config.post_processing is True
        assert config.datatype_sampling is False
        assert config.datatype_sample_fraction == 0.1
        assert config.datatype_min_sample == 1000

    @pytest.mark.parametrize("theta", [-0.1, 1.1])
    def test_invalid_theta(self, theta):
        with pytest.raises(ConfigurationError):
            PGHiveConfig(theta=theta)

    def test_invalid_embedding_dim(self):
        with pytest.raises(ConfigurationError):
            PGHiveConfig(embedding_dim=0)

    def test_invalid_label_weight(self):
        with pytest.raises(ConfigurationError):
            PGHiveConfig(label_weight=0)

    def test_invalid_sample_fraction(self):
        with pytest.raises(ConfigurationError):
            PGHiveConfig(datatype_sample_fraction=0.0)

    def test_invalid_min_sample(self):
        with pytest.raises(ConfigurationError):
            PGHiveConfig(datatype_min_sample=0)

    def test_invalid_band_size(self):
        with pytest.raises(ConfigurationError):
            PGHiveConfig(minhash_band_size=0)


class TestAdaptiveOverrides:
    def test_all_none_by_default(self):
        overrides = AdaptiveOverrides()
        assert overrides.bucket_length is None
        assert overrides.num_tables is None
        assert overrides.alpha is None

    def test_invalid_bucket_length(self):
        with pytest.raises(ConfigurationError):
            AdaptiveOverrides(bucket_length=-1.0)

    def test_invalid_num_tables(self):
        with pytest.raises(ConfigurationError):
            AdaptiveOverrides(num_tables=0)

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            AdaptiveOverrides(alpha=0)

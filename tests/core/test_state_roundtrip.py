"""Auto-derived checkpoint/merge round-trip over every DiscoveryState field.

Dynamic companion to the static state-completeness lint (PGL201): the
lint proves each field is *mentioned* by the merge and checkpoint paths;
this test proves the *values* actually survive.  Both are auto-derived
from ``dataclasses.fields(DiscoveryState)``, so adding a field without
extending the sentinel table fails here immediately -- with a message
saying what to add -- even before any behaviour goes wrong.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.pipeline import PipelineState
from repro.core.session import SchemaSession
from repro.core.state import DiscoveryState
from repro.graph.columnar import Interner, SignatureStore
from repro.graph.model import Node, PropertyGraph
from repro.lsh.minhash import MinHashLSH
from repro.schema.model import NodeType, SchemaGraph

_CACHE_KEY = (2, 2, 11)
_PREPROCESSOR_SENTINEL = "sentinel-preprocessor"


def _sentinel_schema() -> SchemaGraph:
    schema = SchemaGraph("sentinel-schema")
    node_type = NodeType("nt_sentinel", ["SentinelLabel"])
    node_type.record_instance("sentinel-instance", ["name"])
    schema.add_node_type(node_type)
    return schema


def _sentinel_union() -> PropertyGraph:
    union = PropertyGraph("sentinel-union")
    union.add_node(
        Node("sentinel-node", frozenset({"SentinelLabel"}), {"name": "s"})
    )
    return union


def _sentinel_pipeline() -> PipelineState:
    num_tables, band_size, seed = _CACHE_KEY
    return PipelineState(
        # The pipeline only requires picklability and identity here; a
        # marker object keeps the test independent of Word2Vec fitting.
        preprocessor=_PREPROCESSOR_SENTINEL,
        minhash_cache={
            _CACHE_KEY: MinHashLSH(
                num_tables=num_tables, band_size=band_size, seed=seed
            )
        },
    )


def _sentinel_interner() -> Interner:
    interner = Interner()
    interner.intern_string("sentinel-token")
    interner.intern_labels(["SentinelLabel"])
    interner.intern_keys(["k1", "k2"])
    return interner


def _sentinel_signatures() -> SignatureStore:
    interner = Interner()
    signature_id = interner.intern_signature_content(
        ["SentinelLabel"], ["k1", "k2"], "si"
    )
    return SignatureStore(interner, {signature_id: 5})


#: One sentinel-distinct value per DiscoveryState field.
SENTINELS = {
    "schema": _sentinel_schema,
    "pipeline": _sentinel_pipeline,
    "union": _sentinel_union,
    "sequence": lambda: 7,
    "streaming_valid": lambda: False,
    "dirty": lambda: True,
    "interner": _sentinel_interner,
    "signatures": _sentinel_signatures,
}


def _assert_sentinels_survive(state: DiscoveryState) -> None:
    """Field-by-field sentinel checks, shared by restore and merge."""
    tokens = {
        label
        for node_type in state.schema.node_types()
        for label in node_type.labels
    }
    assert "SentinelLabel" in tokens
    assert state.union is not None and state.union.has_node("sentinel-node")
    assert state.pipeline.preprocessor == _PREPROCESSOR_SENTINEL
    assert _CACHE_KEY in state.pipeline.minhash_cache
    assert state.sequence == 7
    assert state.streaming_valid is False
    assert state.dirty is True
    assert state.interner is not None
    assert "sentinel-token" in state.interner.snapshot()["strings"]
    # Signature refcounts survive by content, not by process-local id.
    refcounts = {
        (tuple(labels), tuple(keys), shape, src, tgt): count
        for (labels, keys, shape, src, tgt), count in (
            state.signatures.snapshot()
        )
    }
    assert refcounts[(("SentinelLabel",), ("k1", "k2"), "si", None, None)] == 5


def _populated_state() -> DiscoveryState:
    values = {name: factory() for name, factory in SENTINELS.items()}
    return DiscoveryState(**values)


def test_every_field_has_a_sentinel():
    """Drift guard: a new DiscoveryState field must extend this test."""
    declared = {f.name for f in dataclasses.fields(DiscoveryState)}
    missing = declared - set(SENTINELS)
    assert not missing, (
        f"DiscoveryState grew field(s) {sorted(missing)}; add a sentinel "
        "value and survival assertions to test_state_roundtrip.py"
    )
    stale = set(SENTINELS) - declared
    assert not stale, f"sentinels for removed field(s) {sorted(stale)}"


def test_checkpoint_roundtrip_preserves_every_field(tmp_path):
    session = SchemaSession.from_state(_populated_state())
    path = session.checkpoint(tmp_path / "sentinel.ckpt")
    restored = SchemaSession.restore(path).discovery_state
    _assert_sentinels_survive(restored)


def test_merge_preserves_every_field():
    other = DiscoveryState(
        schema=SchemaGraph("other"),
        pipeline=PipelineState(),
        union=PropertyGraph("other-union"),
        sequence=3,
        streaming_valid=True,
        dirty=False,
        interner=Interner(),
    )
    merged = _populated_state().merge(other)
    _assert_sentinels_survive(merged)


@pytest.mark.parametrize("direction", ["left", "right"])
def test_merge_preserves_fields_from_either_side(direction):
    empty = DiscoveryState(
        schema=SchemaGraph("empty"),
        union=PropertyGraph("empty-union"),
        interner=Interner(),
    )
    populated = _populated_state()
    states = [populated, empty] if direction == "left" else [empty, populated]
    merged = DiscoveryState.merged(states)
    _assert_sentinels_survive(merged)

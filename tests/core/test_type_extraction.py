"""Unit tests for Algorithm 2 (type extraction and merging)."""

from repro.core.clustering import Cluster
from repro.core.type_extraction import (
    extract_edge_types,
    extract_node_types,
    extract_types,
)
from repro.schema.model import SchemaGraph


def node_cluster(member_ids, labels=(), keys=()):
    keys = frozenset(keys)
    return Cluster(
        member_ids=list(member_ids),
        labels=set(labels),
        property_keys=set(keys),
        member_property_keys=[keys] * len(member_ids),
    )


def edge_cluster(member_ids, labels=(), keys=(), sources=(), targets=()):
    keys = frozenset(keys)
    return Cluster(
        member_ids=list(member_ids),
        labels=set(labels),
        property_keys=set(keys),
        source_tokens=set(sources),
        target_tokens=set(targets),
        member_property_keys=[keys] * len(member_ids),
    )


class TestLabeledNodeClusters:
    def test_same_label_clusters_merge(self):
        schema = SchemaGraph()
        extract_node_types(
            schema,
            [
                node_cluster(["a"], {"Post"}, {"imgFile"}),
                node_cluster(["b"], {"Post"}, {"content"}),
            ],
            theta=0.9,
        )
        assert schema.node_type_count == 1
        post = schema.node_type_by_token("Post")
        assert post.property_keys == frozenset({"imgFile", "content"})
        assert post.instance_ids == {"a", "b"}

    def test_different_labels_stay_separate(self):
        schema = SchemaGraph()
        extract_node_types(
            schema,
            [
                node_cluster(["a"], {"Person"}, {"name"}),
                node_cluster(["b"], {"Org"}, {"name"}),
            ],
            theta=0.9,
        )
        assert schema.node_type_count == 2

    def test_multilabel_cluster_token(self):
        schema = SchemaGraph()
        extract_node_types(
            schema, [node_cluster(["a"], {"Person", "Student"}, {"x"})], theta=0.9
        )
        assert schema.node_type_by_token("Person+Student") is not None


class TestUnlabeledNodeClusters:
    def test_jaccard_merge_into_labeled(self):
        schema = SchemaGraph()
        extract_node_types(
            schema,
            [
                node_cluster(["a", "b"], {"Person"}, {"name", "gender", "bday"}),
                node_cluster(["c"], (), {"name", "gender", "bday"}),
            ],
            theta=0.9,
        )
        assert schema.node_type_count == 1
        person = schema.node_type_by_token("Person")
        assert "c" in person.instance_ids
        assert not person.abstract

    def test_below_threshold_becomes_abstract(self):
        schema = SchemaGraph()
        extract_node_types(
            schema,
            [
                node_cluster(["a"], {"Person"}, {"name", "gender", "bday"}),
                node_cluster(["c"], (), {"salary"}),
            ],
            theta=0.9,
        )
        assert schema.node_type_count == 2
        assert len(schema.abstract_node_types()) == 1

    def test_unlabeled_pair_merges_together(self):
        schema = SchemaGraph()
        extract_node_types(
            schema,
            [
                node_cluster(["a"], (), {"x", "y"}),
                node_cluster(["b"], (), {"x", "y"}),
            ],
            theta=0.9,
        )
        assert schema.node_type_count == 1
        assert schema.abstract_node_types()[0].instance_ids == {"a", "b"}

    def test_best_jaccard_candidate_wins(self):
        schema = SchemaGraph()
        extract_node_types(
            schema,
            [
                node_cluster(["a"], {"A"}, {"x", "y", "z", "w"}),
                node_cluster(["b"], {"B"}, {"x", "y", "z"}),
                node_cluster(["c"], (), {"x", "y", "z"}),
            ],
            theta=0.9,
        )
        b_type = schema.node_type_by_token("B")
        assert "c" in b_type.instance_ids

    def test_lower_theta_merges_more(self):
        def run(theta):
            schema = SchemaGraph()
            extract_node_types(
                schema,
                [
                    node_cluster(["a"], {"A"}, {"x", "y"}),
                    node_cluster(["b"], (), {"x"}),
                ],
                theta=theta,
            )
            return schema.node_type_count

        assert run(0.9) == 2
        assert run(0.4) == 1


class TestEdgeClusters:
    def test_same_label_compatible_endpoints_merge(self):
        schema = SchemaGraph()
        extract_edge_types(
            schema,
            [
                edge_cluster(["e1"], {"KNOWS"}, {"since"}, {"Person"}, {"Person"}),
                edge_cluster(["e2"], {"KNOWS"}, (), {"Person"}, {"Person"}),
            ],
            theta=0.9,
        )
        assert schema.edge_type_count == 1
        knows = schema.edge_type_by_token("KNOWS")
        assert knows.property_keys == frozenset({"since"})
        assert knows.instance_ids == {"e1", "e2"}

    def test_same_label_disjoint_endpoints_stay_separate(self):
        schema = SchemaGraph()
        extract_edge_types(
            schema,
            [
                edge_cluster(["e1"], {"ConnectsTo"}, (), {"Neuron"}, {"Neuron"}),
                edge_cluster(["e2"], {"ConnectsTo"}, (), {"Segment"}, {"Segment"}),
            ],
            theta=0.9,
        )
        assert schema.edge_type_count == 2

    def test_endpoint_union_defines_connectivity(self):
        schema = SchemaGraph()
        extract_edge_types(
            schema,
            [
                edge_cluster(["e1"], {"LOCATED_IN"}, (), {"Org."}, {"Place"}),
                edge_cluster(
                    ["e2"], {"LOCATED_IN"}, {"from"}, {"Org.", "Person"}, {"Place"}
                ),
            ],
            theta=0.9,
        )
        located = schema.edge_type_by_token("LOCATED_IN")
        assert located.source_tokens == {"Org.", "Person"}
        assert located.target_tokens == {"Place"}

    def test_unlabeled_edge_merges_by_jaccard_with_endpoint_guard(self):
        schema = SchemaGraph()
        extract_edge_types(
            schema,
            [
                edge_cluster(["e1"], {"KNOWS"}, {"since"}, {"Person"}, {"Person"}),
                edge_cluster(["e2"], (), {"since"}, {"Person"}, {"Person"}),
                edge_cluster(["e3"], (), {"since"}, {"Robot"}, {"Robot"}),
            ],
            theta=0.9,
        )
        knows = schema.edge_type_by_token("KNOWS")
        assert "e2" in knows.instance_ids
        assert "e3" not in knows.instance_ids
        assert schema.edge_type_count == 2


class TestExtractTypesEntryPoint:
    def test_runs_both_kinds(self):
        schema = SchemaGraph()
        extract_types(
            schema,
            [node_cluster(["a"], {"A"}, {"x"})],
            [edge_cluster(["e"], {"R"}, (), {"A"}, {"A"})],
        )
        assert schema.node_type_count == 1
        assert schema.edge_type_count == 1

    def test_incremental_accumulation(self):
        schema = SchemaGraph()
        extract_types(schema, [node_cluster(["a"], {"A"}, {"x"})], [])
        extract_types(schema, [node_cluster(["b"], {"A"}, {"y"})], [])
        assert schema.node_type_count == 1
        assert schema.node_type_by_token("A").property_keys == frozenset({"x", "y"})

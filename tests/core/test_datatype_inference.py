"""Unit tests for schema-level datatype inference (section 4.4)."""

import numpy as np
from repro.core.config import PGHiveConfig
from repro.core.datatype_inference import (
    collect_property_values,
    infer_datatypes,
    sample_values,
)
from repro.core.pipeline import PGHive
from repro.schema.datatypes import DataType


class TestSampleValues:
    def test_min_sample_floor(self):
        rng = np.random.default_rng(0)
        values = list(range(50))
        sampled = sample_values(values, fraction=0.1, min_sample=1000, rng=rng)
        assert sorted(sampled) == values  # floor exceeds population

    def test_fraction_applied(self):
        rng = np.random.default_rng(0)
        values = list(range(10_000))
        sampled = sample_values(values, fraction=0.1, min_sample=10, rng=rng)
        assert len(sampled) == 1000
        assert set(sampled) <= set(values)

    def test_no_duplicates(self):
        rng = np.random.default_rng(0)
        sampled = sample_values(list(range(100)), 0.5, 10, rng)
        assert len(sampled) == len(set(sampled))

    def test_empty(self):
        rng = np.random.default_rng(0)
        assert sample_values([], 0.1, 10, rng) == []


class TestInferDatatypes:
    def test_figure1_types(self, figure1_graph):
        result = PGHive(PGHiveConfig(seed=0)).discover(figure1_graph)
        person = result.schema.node_type_by_token("Person")
        assert person.properties["name"].data_type is DataType.STRING
        assert person.properties["bday"].data_type is DataType.DATE
        knows = result.schema.edge_type_by_token("KNOWS")
        assert knows.properties["since"].data_type is DataType.INTEGER

    def test_collect_property_values(self, figure1_graph):
        result = PGHive(PGHiveConfig(seed=0)).discover(figure1_graph)
        person = result.schema.node_type_by_token("Person")
        values = collect_property_values(figure1_graph, person, "gender", False)
        assert sorted(values) == ["female", "male", "male"]

    def test_missing_instances_skipped(self, figure1_graph):
        result = PGHive(PGHiveConfig(seed=0)).discover(figure1_graph)
        person = result.schema.node_type_by_token("Person")
        person.instance_ids.add("ghost")
        values = collect_property_values(figure1_graph, person, "gender", False)
        assert len(values) == 3  # ghost silently skipped

    def test_sampling_mode_consistent_on_homogeneous_data(self, figure1_graph):
        config = PGHiveConfig(seed=0, datatype_sampling=True, datatype_min_sample=2)
        result = PGHive(config).discover(figure1_graph)
        person = result.schema.node_type_by_token("Person")
        assert person.properties["bday"].data_type is DataType.DATE

    def test_unvalued_property_defaults_to_string(self, figure1_graph):
        result = PGHive(PGHiveConfig(seed=0)).discover(figure1_graph)
        person = result.schema.node_type_by_token("Person")
        person.ensure_property("phantom")
        infer_datatypes(result.schema, figure1_graph, PGHiveConfig(seed=0))
        assert person.properties["phantom"].data_type is DataType.STRING

    def test_compatibility_guarantee(self, figure1_graph):
        # Section 4.7: every observed value is compatible with the inferred
        # type.
        from repro.schema.datatypes import is_value_compatible

        result = PGHive(PGHiveConfig(seed=0)).discover(figure1_graph)
        for node_type in result.schema.node_types():
            for key, spec in node_type.properties.items():
                values = collect_property_values(
                    figure1_graph, node_type, key, False
                )
                for value in values:
                    assert is_value_compatible(value, spec.data_type)

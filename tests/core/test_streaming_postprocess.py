"""Streaming post-processing equivalence and accumulator unit tests.

The streaming subsystem (``repro.core.accumulators``) must reproduce the
full-scan post-processing results *bit for bit*: same datatypes, same
cardinality bounds and classes, same mandatory/optional flags, same
candidate keys -- on any insert stream, in any batch order, including the
single-batch degenerate case.  The oracle is the pre-accumulator
behaviour, still reachable via ``retain_union=True,
streaming_postprocess=False``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.accumulators import (
    DatatypeAccumulator,
    DistinctTracker,
    EndpointAccumulator,
    KeyAccumulator,
    SummaryOptions,
    TypeSummaries,
)
from repro.core.config import PGHiveConfig
from repro.core.incremental import IncrementalSchemaDiscovery
from repro.core.pipeline import PGHive
from repro.errors import ConfigurationError, SchemaError
from repro.graph.batching import split_into_batches
from repro.graph.model import Edge, Node, PropertyGraph
from repro.schema.datatypes import DataType


# ----------------------------------------------------------------------
# Accumulator unit behaviour
# ----------------------------------------------------------------------
class TestDatatypeAccumulator:
    def test_folds_through_lattice(self):
        acc = DatatypeAccumulator()
        acc.observe("x", 1)
        assert acc.types["x"] is DataType.INTEGER
        acc.observe("x", 2.5)
        assert acc.types["x"] is DataType.FLOAT
        acc.observe("x", "hello")
        assert acc.types["x"] is DataType.STRING
        # STRING is absorbing.
        acc.observe("x", 3)
        assert acc.types["x"] is DataType.STRING

    def test_merge_is_lattice_join(self):
        left, right = DatatypeAccumulator(), DatatypeAccumulator()
        left.observe("a", 1)
        right.observe("a", 2.5)
        right.observe("b", "2024-03-09")
        left.merge_from(right)
        assert left.types["a"] is DataType.FLOAT
        assert left.types["b"] is DataType.DATE

    def test_order_invariance(self):
        values = [1, 2.5, True, "2024-03-09", None, "text"]
        forward, backward = DatatypeAccumulator(), DatatypeAccumulator()
        for v in values:
            forward.observe("k", v)
        for v in reversed(values):
            backward.observe("k", v)
        assert forward.types == backward.types


class TestEndpointAccumulator:
    def test_running_maxima(self):
        acc = EndpointAccumulator()
        acc.observe("s1", "t1")
        acc.observe("s1", "t2")
        acc.observe("s2", "t1")
        bounds = acc.bounds()
        assert (bounds.max_out, bounds.max_in) == (2, 2)

    def test_duplicate_edges_do_not_inflate(self):
        acc = EndpointAccumulator()
        acc.observe("s", "t")
        acc.observe("s", "t")
        assert (acc.max_out, acc.max_in) == (1, 1)

    def test_merge_unions_endpoint_sets(self):
        left, right = EndpointAccumulator(), EndpointAccumulator()
        left.observe("s", "t1")
        right.observe("s", "t2")
        right.observe("u", "t1")
        left.merge_from(right)
        assert (left.max_out, left.max_in) == (2, 2)
        # Shared (s, t1) on both sides stays one distinct endpoint.
        left2, right2 = EndpointAccumulator(), EndpointAccumulator()
        left2.observe("s", "t1")
        right2.observe("s", "t1")
        left2.merge_from(right2)
        assert (left2.max_out, left2.max_in) == (1, 1)


class TestDistinctTracker:
    def test_detects_cross_instance_duplicates(self):
        tracker = DistinctTracker()
        tracker.observe("v", "i1")
        assert tracker.distinct
        tracker.observe("v", "i2")
        assert not tracker.distinct

    def test_merge_same_witness_is_not_a_duplicate(self):
        # The same instance replayed on both sides of a type merge must
        # not collapse the tracker (overlapping instance sets dedup).
        left, right = DistinctTracker(), DistinctTracker()
        left.observe("v", "i1")
        right.observe("v", "i1")
        left.merge_from(right)
        assert left.distinct

    def test_merge_cross_side_collision_is_a_duplicate(self):
        left, right = DistinctTracker(), DistinctTracker()
        left.observe("v", "i1")
        right.observe("v", "i2")
        left.merge_from(right)
        assert not left.distinct

    def test_duplicated_state_is_terminal_and_frees_memory(self):
        tracker = DistinctTracker()
        tracker.observe("v", "i1")
        tracker.observe("v", "i2")
        assert tracker.witnesses is None
        tracker.observe("w", "i3")
        assert not tracker.distinct


class TestKeyAccumulator:
    def test_pairs_seeded_from_first_instance(self):
        acc = KeyAccumulator()
        acc.observe("i1", {"a": 1, "b": 2, "c": 3})
        assert set(acc.pairs) == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_pair_dies_when_key_missing(self):
        acc = KeyAccumulator()
        acc.observe("i1", {"a": 1, "b": 2})
        acc.observe("i2", {"a": 2})
        assert acc.pairs == {}

    def test_pair_overflow_above_cap(self):
        acc = KeyAccumulator(pair_cap=2)
        acc.observe("i1", {"a": 1, "b": 2, "c": 3})
        assert acc.pair_overflow
        assert acc.pairs == {}

    def test_single_tracker_counts_cover_instances(self):
        acc = KeyAccumulator()
        acc.observe("i1", {"a": 1})
        acc.observe("i2", {"a": 2, "b": 1})
        assert acc.singles["a"].count == acc.instances == 2
        assert acc.singles["b"].count == 1  # absent on i1 -> not a key


class TestTypeSummariesMerge:
    def test_key_state_lost_when_one_side_untracked(self):
        options = SummaryOptions(track_keys=True)
        left = TypeSummaries(is_edge=False, options=options)
        right = TypeSummaries(is_edge=False)
        left.observe("i1", {"a": 1})
        right.observe("i2", {"a": 2})
        left.merge_from(right)
        assert left.keys is None  # unknown, never wrong

    def test_copy_is_independent(self):
        options = SummaryOptions(track_keys=True)
        original = TypeSummaries(is_edge=True, options=options)
        original.observe("e1", {"w": 1}, endpoints=("s", "t"))
        clone = original.copy()
        clone.observe("e2", {"w": 2}, endpoints=("s", "t2"))
        assert original.endpoints.max_out == 1
        assert clone.endpoints.max_out == 2
        assert original.keys.instances == 1


# ----------------------------------------------------------------------
# Engine-level behaviour
# ----------------------------------------------------------------------
class TestUnionRetention:
    def test_no_union_graph_by_default(self, figure1_graph):
        engine = IncrementalSchemaDiscovery(PGHiveConfig(seed=0))
        for batch in split_into_batches(figure1_graph, 2, seed=1):
            engine.add_batch(batch)
        assert engine._union is None
        with pytest.raises(ConfigurationError):
            engine.union_graph

    def test_retain_union_keeps_all_batches(self, figure1_graph):
        engine = IncrementalSchemaDiscovery(
            PGHiveConfig(seed=0, retain_union=True)
        )
        for batch in split_into_batches(figure1_graph, 2, seed=1):
            engine.add_batch(batch)
        assert engine.union_graph.node_count == figure1_graph.node_count
        assert engine.union_graph.edge_count == figure1_graph.edge_count

    def test_full_scan_mode_requires_union(self):
        with pytest.raises(ConfigurationError):
            PGHiveConfig(streaming_postprocess=False)

    def test_streaming_read_raises_without_summaries(self):
        from repro.core.datatype_inference import infer_datatypes_streaming
        from repro.schema.model import NodeType, SchemaGraph

        schema = SchemaGraph()
        schema.add_node_type(NodeType("n0", {"T"}))
        with pytest.raises(SchemaError):
            infer_datatypes_streaming(schema)

    def test_edge_cluster_without_endpoints_invalidates_summaries(self):
        # Property payloads alone are not enough for an edge type: missing
        # endpoint payloads must invalidate (streaming read then raises)
        # rather than silently reporting 0-degree cardinality bounds.
        from repro.core.cardinality_inference import (
            compute_cardinalities_streaming,
        )
        from repro.core.clustering import Cluster
        from repro.core.type_extraction import extract_types
        from repro.schema.model import SchemaGraph

        cluster = Cluster(
            member_ids=["e1", "e2"],
            labels={"REL"},
            property_keys={"w"},
            member_property_keys=[frozenset({"w"})] * 2,
            member_properties=[{"w": 1}, {"w": 2}],
        )
        schema = SchemaGraph()
        extract_types(schema, [], [cluster])
        (edge_type,) = schema.edge_types()
        assert edge_type.summaries is None
        with pytest.raises(SchemaError):
            compute_cardinalities_streaming(schema)

    def test_no_summaries_when_post_processing_disabled(self, figure1_graph):
        # config.post_processing=False times clustering alone; the engine
        # must not pay for accumulators nobody will ever read.
        engine = IncrementalSchemaDiscovery(
            PGHiveConfig(seed=0, post_processing=False)
        )
        for batch in split_into_batches(figure1_graph, 2, seed=1):
            engine.add_batch(batch)
        engine.finalize()
        assert all(
            t.summaries is None
            for t in (*engine.schema.node_types(), *engine.schema.edge_types())
        )

    def test_pair_overflow_warns_instead_of_silent_divergence(self):
        import warnings

        from repro.core.key_inference import candidate_keys_from_summaries
        from repro.schema.model import NodeType

        node_type = NodeType("n0", {"Wide"})
        node_type.summaries = TypeSummaries(
            is_edge=False, options=SummaryOptions(track_keys=True, pair_cap=2)
        )
        # Three shared-value keys on every instance: all mandatory, none a
        # singleton key, so the full scan would search their pairs.
        for index in range(3):
            properties = {"a": 1, "b": 2, "c": 3}
            node_type.record_instance(f"i{index}", properties)
            node_type.summaries.observe(f"i{index}", properties)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            from repro.core.constraints import infer_type_constraints

            infer_type_constraints(node_type)
            keys = candidate_keys_from_summaries(node_type)
        assert keys == []
        assert any("composite-key tracking overflowed" in str(w.message)
                   for w in caught)

    def test_full_scan_runs_build_no_summaries(self, figure1_graph):
        # Static discovery and the union-rescan oracle never read the
        # accumulators, so they must not pay for building them.
        static = PGHive(PGHiveConfig(seed=0, infer_keys=True)).discover(
            figure1_graph
        )
        assert all(
            t.summaries is None
            for t in (*static.schema.node_types(), *static.schema.edge_types())
        )
        engine = IncrementalSchemaDiscovery(
            PGHiveConfig(seed=0, retain_union=True, streaming_postprocess=False)
        )
        for batch in split_into_batches(figure1_graph, 2, seed=1):
            engine.add_batch(batch)
        engine.finalize()
        assert all(
            t.summaries is None
            for t in (*engine.schema.node_types(), *engine.schema.edge_types())
        )


# ----------------------------------------------------------------------
# Equivalence with the full-scan oracle
# ----------------------------------------------------------------------
def _snapshot(schema):
    """Everything post-processing writes, keyed by type id."""
    out = {}
    for schema_type in (*schema.node_types(), *schema.edge_types()):
        out[schema_type.type_id] = (
            schema_type.display_name,
            {
                key: (spec.data_type, spec.mandatory, spec.unique)
                for key, spec in schema_type.properties.items()
            },
            list(schema_type.candidate_keys),
            getattr(schema_type, "cardinality", None),
            getattr(schema_type, "cardinality_bounds", None),
        )
    return out


def _run_stream(batches, seed, **overrides):
    config = PGHiveConfig(seed=seed, infer_keys=True, **overrides)
    engine = IncrementalSchemaDiscovery(config)
    for batch in batches:
        engine.add_batch(batch)
    engine.finalize()
    return engine.schema


def _assert_equivalent(batches, seed):
    streaming = _run_stream(batches, seed)
    oracle = _run_stream(
        batches, seed, retain_union=True, streaming_postprocess=False
    )
    assert _snapshot(streaming) == _snapshot(oracle)


_VALUES = st.one_of(
    st.integers(min_value=-10, max_value=10),
    st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
    st.booleans(),
    st.sampled_from(["2024-03-09", "2024-03-09T12:30:00", "x", "yy", None]),
    st.text(alphabet="abAB", min_size=0, max_size=4),
)

#: label -> (property key, chance the key is present)
_TEMPLATES = {
    "Person": (("pid", 1.0), ("name", 1.0), ("age", 0.7)),
    "Post": (("pid", 1.0), ("content", 0.9), ("score", 0.5)),
    "Place": (("name", 1.0), ("lat", 0.8)),
}
_EDGE_TEMPLATES = {
    "KNOWS": (("since", 0.8),),
    "LIKES": (("weight", 0.6), ("since", 0.4)),
}


@st.composite
def _streams(draw):
    node_count = draw(st.integers(min_value=6, max_value=28))
    graph = PropertyGraph("hypothesis-graph")
    labels = sorted(_TEMPLATES)
    for index in range(node_count):
        label = draw(st.sampled_from(labels))
        properties = {}
        for key, presence in _TEMPLATES[label]:
            if draw(st.floats(min_value=0.0, max_value=1.0)) <= presence:
                if key == "pid":
                    # Mostly unique with occasional duplicates, so both
                    # key outcomes are exercised.
                    duplicate = draw(st.booleans()) and index > 0
                    properties[key] = f"id-{0 if duplicate else index}"
                else:
                    properties[key] = draw(_VALUES)
        graph.add_node(Node(f"n{index}", {label}, properties))
    edge_count = draw(st.integers(min_value=0, max_value=2 * node_count))
    for index in range(edge_count):
        source = f"n{draw(st.integers(min_value=0, max_value=node_count - 1))}"
        target = f"n{draw(st.integers(min_value=0, max_value=node_count - 1))}"
        label = draw(st.sampled_from(sorted(_EDGE_TEMPLATES)))
        properties = {}
        for key, presence in _EDGE_TEMPLATES[label]:
            if draw(st.floats(min_value=0.0, max_value=1.0)) <= presence:
                properties[key] = draw(_VALUES)
        graph.add_edge(Edge(f"e{index}", source, target, {label}, properties))
    batch_count = draw(st.integers(min_value=1, max_value=4))
    batch_seed = draw(st.integers(min_value=0, max_value=99))
    return split_into_batches(graph, batch_count, seed=batch_seed)


class TestStreamingEquivalence:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(batches=_streams(), seed=st.integers(min_value=0, max_value=9))
    def test_randomized_streams_match_oracle(self, batches, seed):
        _assert_equivalent(batches, seed)

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(batches=_streams(), seed=st.integers(min_value=0, max_value=9))
    def test_per_batch_postprocess_matches_oracle(self, batches, seed):
        streaming = _run_stream(batches, seed, post_process_each_batch=True)
        oracle = _run_stream(
            batches,
            seed,
            post_process_each_batch=True,
            retain_union=True,
            streaming_postprocess=False,
        )
        assert _snapshot(streaming) == _snapshot(oracle)

    def test_figure1_stream_matches_oracle(self, figure1_graph):
        for batch_count in (1, 2, 4):
            batches = split_into_batches(figure1_graph, batch_count, seed=7)
            _assert_equivalent(batches, seed=0)

    def test_single_batch_matches_static_full_scan(self, figure1_graph):
        # Degenerate stream of one batch: the streaming engine must agree
        # with static discovery's full scan over the very same graph.
        config = PGHiveConfig(seed=0, infer_keys=True)
        static = PGHive(config).discover(figure1_graph)
        streaming = _run_stream([figure1_graph], seed=0)
        assert _snapshot(streaming) == _snapshot(static.schema)

    def test_streaming_ignores_sampling_and_stays_exact(self, figure1_graph):
        # Sampled datatype inference is a full-scan concession; the
        # accumulators are exact by construction, so the streaming path
        # matches the *exact* oracle even when sampling is configured.
        batches = split_into_batches(figure1_graph, 2, seed=11)
        sampled = _run_stream(batches, seed=0, datatype_sampling=True)
        exact = _run_stream(
            batches, seed=0, retain_union=True, streaming_postprocess=False
        )
        assert _snapshot(sampled) == _snapshot(exact)

"""Unit tests for noise injection (section 5)."""

import pytest

from repro.datasets import apply_noise, load_dataset
from repro.datasets.noise import reduce_label_availability, remove_properties
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("POLE", nodes=500, seed=0)


class TestRemoveProperties:
    def test_zero_noise_is_identity(self, dataset):
        noisy = remove_properties(dataset.graph, 0.0, seed=1)
        for node in dataset.graph.nodes():
            assert noisy.node(node.node_id).properties == dict(node.properties)

    def test_rate_removes_expected_fraction(self, dataset):
        before = sum(len(n.properties) for n in dataset.graph.nodes())
        noisy = remove_properties(dataset.graph, 0.4, seed=1)
        after = sum(len(n.properties) for n in noisy.nodes())
        assert after < before
        assert after / before == pytest.approx(0.6, abs=0.05)

    def test_full_removal(self, dataset):
        noisy = remove_properties(dataset.graph, 1.0, seed=1)
        assert all(not n.properties for n in noisy.nodes())
        assert all(not e.properties for e in noisy.edges())

    def test_labels_untouched(self, dataset):
        noisy = remove_properties(dataset.graph, 0.4, seed=1)
        for node in dataset.graph.nodes():
            assert noisy.node(node.node_id).labels == node.labels

    def test_deterministic(self, dataset):
        first = remove_properties(dataset.graph, 0.3, seed=9)
        second = remove_properties(dataset.graph, 0.3, seed=9)
        for node in first.nodes():
            assert second.node(node.node_id).property_keys == node.property_keys

    def test_invalid_rate(self, dataset):
        with pytest.raises(ConfigurationError):
            remove_properties(dataset.graph, 1.5)


class TestReduceLabelAvailability:
    def test_full_availability_is_identity(self, dataset):
        reduced = reduce_label_availability(dataset.graph, 1.0, seed=1)
        for node in dataset.graph.nodes():
            assert reduced.node(node.node_id).labels == node.labels

    def test_zero_availability_strips_all_node_labels(self, dataset):
        reduced = reduce_label_availability(dataset.graph, 0.0, seed=1)
        assert all(not n.labels for n in reduced.nodes())

    def test_edge_labels_survive_by_default(self, dataset):
        reduced = reduce_label_availability(dataset.graph, 0.0, seed=1)
        for edge in dataset.graph.edges():
            assert reduced.edge(edge.edge_id).labels == edge.labels

    def test_include_edges_strips_edge_labels_too(self, dataset):
        reduced = reduce_label_availability(
            dataset.graph, 0.0, seed=1, include_edges=True
        )
        assert all(not e.labels for e in reduced.edges())

    def test_half_availability_partial(self, dataset):
        reduced = reduce_label_availability(dataset.graph, 0.5, seed=1)
        labeled = sum(1 for n in reduced.nodes() if n.labels)
        assert 0.35 < labeled / reduced.node_count < 0.65

    def test_properties_untouched(self, dataset):
        reduced = reduce_label_availability(dataset.graph, 0.0, seed=1)
        for node in dataset.graph.nodes():
            assert reduced.node(node.node_id).properties == dict(node.properties)

    def test_invalid_availability(self, dataset):
        with pytest.raises(ConfigurationError):
            reduce_label_availability(dataset.graph, -0.2)


class TestApplyNoise:
    def test_truth_preserved(self, dataset):
        noisy = apply_noise(dataset, 0.4, 0.0, seed=2)
        assert noisy.node_truth == dataset.node_truth
        assert noisy.edge_truth == dataset.edge_truth

    def test_both_perturbations_applied(self, dataset):
        noisy = apply_noise(dataset, 0.4, 0.5, seed=2)
        properties_before = sum(len(n.properties) for n in dataset.graph.nodes())
        properties_after = sum(len(n.properties) for n in noisy.graph.nodes())
        assert properties_after < properties_before
        labeled = sum(1 for n in noisy.graph.nodes() if n.labels)
        assert labeled < dataset.graph.node_count

    def test_original_untouched(self, dataset):
        apply_noise(dataset, 1.0, 0.0, seed=2)
        assert any(n.properties for n in dataset.graph.nodes())

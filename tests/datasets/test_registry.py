"""Tests over the eight registered datasets (Table 2 shape checks)."""

import pytest

from repro.datasets import (
    ALL_SPECS,
    dataset_names,
    get_spec,
    load_all,
    load_dataset,
)
from repro.errors import DatasetError

#: Ground-truth type inventories straight from Table 2.
EXPECTED_TYPES = {
    "POLE": (11, 17),
    "MB6": (4, 5),
    "HET.IO": (11, 24),
    "FIB25": (4, 5),
    "ICIJ": (5, 14),
    "LDBC": (7, 17),
    "CORD19": (16, 16),
}


class TestRegistry:
    def test_eight_datasets_in_table2_order(self):
        assert dataset_names() == [
            "POLE",
            "MB6",
            "HET.IO",
            "FIB25",
            "ICIJ",
            "LDBC",
            "CORD19",
            "IYP",
        ]

    def test_lookup_case_insensitive(self):
        assert get_spec("pole").name == "POLE"
        assert get_spec("Het.IO").name == "HET.IO"

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_spec("ENRON")

    @pytest.mark.parametrize("name,expected", EXPECTED_TYPES.items())
    def test_type_inventories_match_table2(self, name, expected):
        spec = get_spec(name)
        assert (len(spec.node_types), len(spec.edge_types)) == expected

    def test_iyp_is_heterogeneous(self):
        spec = get_spec("IYP")
        assert len(spec.node_types) >= 30
        assert len(spec.edge_types) == 25
        labels = {label for t in spec.node_types for label in t.labels}
        assert len(labels) >= 25

    def test_edge_specs_reference_existing_node_types(self):
        for spec in ALL_SPECS:
            node_names = {t.name for t in spec.node_types}
            for edge_type in spec.edge_types:
                assert edge_type.source in node_names, (spec.name, edge_type.name)
                assert edge_type.target in node_names, (spec.name, edge_type.name)

    def test_edge_type_names_unique(self):
        for spec in ALL_SPECS:
            names = [t.name for t in spec.edge_types]
            assert len(names) == len(set(names)), spec.name

    def test_node_type_label_sets_unique(self):
        # Distinct ground-truth types must be distinguishable by label set.
        for spec in ALL_SPECS:
            label_sets = [frozenset(t.labels) for t in spec.node_types]
            assert len(label_sets) == len(set(label_sets)), spec.name


class TestGeneratedShape:
    @pytest.fixture(scope="class")
    def datasets(self):
        return {d.name: d for d in load_all(scale=0.2, seed=1)}

    def test_multilabel_datasets(self, datasets):
        for name in ("MB6", "FIB25", "HET.IO", "LDBC"):
            stats = datasets[name].statistics()
            assert stats.node_labels > stats.node_types or any(
                len(t.labels) > 1 for t in datasets[name].spec.node_types
            ), name

    def test_shared_edge_labels(self, datasets):
        # MB6/FIB25: 5 edge types over 3 labels.
        for name in ("MB6", "FIB25"):
            stats = datasets[name].statistics()
            assert stats.edge_labels == 3, name

    def test_pattern_multiplicity_ordering(self, datasets):
        # Integration datasets are much more pattern-diverse than LDBC.
        assert (
            datasets["ICIJ"].statistics().node_patterns
            > datasets["LDBC"].statistics().node_patterns
        )
        assert (
            datasets["IYP"].statistics().node_patterns
            > datasets["POLE"].statistics().node_patterns
        )

    def test_hetio_edge_heavy(self, datasets):
        stats = datasets["HET.IO"].statistics()
        assert stats.edges > 5 * stats.nodes

    def test_explicit_size_override(self):
        dataset = load_dataset("POLE", nodes=333, seed=0)
        assert abs(dataset.graph.node_count - 333) <= len(
            dataset.spec.node_types
        ) * 2

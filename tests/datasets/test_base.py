"""Unit tests for the dataset generator substrate."""

import pytest

from repro.datasets.base import (
    DatasetSpec,
    EdgeTypeSpec,
    GeneratedDataset,
    NodeTypeSpec,
    PropertyGen,
    generate_dataset,
)
from repro.errors import DatasetError

SIMPLE = DatasetSpec(
    name="simple",
    default_nodes=100,
    node_types=(
        NodeTypeSpec("A", ("A",), (PropertyGen("x", "int"),), weight=1.0),
        NodeTypeSpec(
            "B",
            ("B",),
            (
                PropertyGen("y", "string"),
                PropertyGen("maybe", "float", presence=0.5),
            ),
            weight=3.0,
        ),
    ),
    edge_types=(
        EdgeTypeSpec("AB", "REL", "A", "B", wiring="many_to_one"),
        EdgeTypeSpec("BB", "LINK", "B", "B", wiring="many_to_many", fanout=2.0),
        EdgeTypeSpec("pair", "PAIR", "A", "B", wiring="one_to_one"),
    ),
)


class TestGeneration:
    def test_node_counts_follow_weights(self):
        dataset = generate_dataset(SIMPLE, nodes=400, seed=0)
        truth_counts = {}
        for type_name in dataset.node_truth.values():
            truth_counts[type_name] = truth_counts.get(type_name, 0) + 1
        assert truth_counts["B"] > truth_counts["A"] * 2

    def test_ground_truth_covers_every_element(self):
        dataset = generate_dataset(SIMPLE, nodes=200, seed=0)
        assert set(dataset.node_truth) == set(dataset.graph.node_ids())
        assert set(dataset.edge_truth) == set(dataset.graph.edge_ids())

    def test_labels_follow_spec(self):
        dataset = generate_dataset(SIMPLE, nodes=200, seed=0)
        for node in dataset.graph.nodes():
            type_name = dataset.node_truth[node.node_id]
            spec = SIMPLE.node_type(type_name)
            assert node.labels == frozenset(spec.labels)

    def test_optional_properties_create_patterns(self):
        dataset = generate_dataset(SIMPLE, nodes=400, seed=0)
        b_keysets = {
            node.property_keys
            for node in dataset.graph.nodes()
            if dataset.node_truth[node.node_id] == "B"
        }
        assert len(b_keysets) == 2  # with and without "maybe"

    def test_deterministic_under_seed(self):
        first = generate_dataset(SIMPLE, nodes=150, seed=7)
        second = generate_dataset(SIMPLE, nodes=150, seed=7)
        assert list(first.graph.node_ids()) == list(second.graph.node_ids())
        for node in first.graph.nodes():
            assert second.graph.node(node.node_id).properties == dict(
                node.properties
            )

    def test_different_seeds_differ(self):
        first = generate_dataset(SIMPLE, nodes=150, seed=1)
        second = generate_dataset(SIMPLE, nodes=150, seed=2)
        first_values = [dict(n.properties) for n in first.graph.nodes()]
        second_values = [dict(n.properties) for n in second.graph.nodes()]
        assert first_values != second_values

    def test_too_few_nodes_rejected(self):
        with pytest.raises(DatasetError):
            generate_dataset(SIMPLE, nodes=2)


class TestWiring:
    @pytest.fixture(scope="class")
    def dataset(self) -> GeneratedDataset:
        return generate_dataset(SIMPLE, nodes=300, seed=3)

    def edges_of(self, dataset, type_name):
        return [
            dataset.graph.edge(edge_id)
            for edge_id, name in dataset.edge_truth.items()
            if name == type_name
        ]

    def test_many_to_one_each_source_once(self, dataset):
        edges = self.edges_of(dataset, "AB")
        sources = [e.source_id for e in edges]
        assert len(sources) == len(set(sources))
        a_nodes = [i for i, t in dataset.node_truth.items() if t == "A"]
        assert len(edges) == len(a_nodes)

    def test_one_to_one_bijective(self, dataset):
        edges = self.edges_of(dataset, "pair")
        sources = [e.source_id for e in edges]
        targets = [e.target_id for e in edges]
        assert len(sources) == len(set(sources))
        assert len(targets) == len(set(targets))

    def test_many_to_many_no_self_loops(self, dataset):
        edges = self.edges_of(dataset, "BB")
        assert all(e.source_id != e.target_id for e in edges)
        assert len(edges) > 0

    def test_edge_endpoints_match_spec_types(self, dataset):
        for edge in self.edges_of(dataset, "AB"):
            assert dataset.node_truth[edge.source_id] == "A"
            assert dataset.node_truth[edge.target_id] == "B"


class TestPropertyKinds:
    def test_all_kinds_generate(self):
        spec = DatasetSpec(
            name="kinds",
            default_nodes=40,
            node_types=(
                NodeTypeSpec(
                    "K",
                    ("K",),
                    tuple(
                        PropertyGen(kind, kind)
                        for kind in (
                            "int",
                            "float",
                            "bool",
                            "date",
                            "datetime",
                            "string",
                            "name",
                            "url",
                        )
                    ),
                ),
            ),
            edge_types=(),
        )
        dataset = generate_dataset(spec, nodes=40, seed=0)
        node = next(dataset.graph.nodes())
        assert isinstance(node.properties["int"], int)
        assert isinstance(node.properties["float"], float)
        assert isinstance(node.properties["bool"], bool)
        assert "-" in node.properties["date"]
        assert "T" in node.properties["datetime"]

    def test_unknown_kind_rejected(self):
        spec = DatasetSpec(
            name="bad",
            default_nodes=10,
            node_types=(
                NodeTypeSpec("K", ("K",), (PropertyGen("x", "quaternion"),)),
            ),
            edge_types=(),
        )
        with pytest.raises(DatasetError):
            generate_dataset(spec, nodes=10, seed=0)

    def test_outliers_mixed_in(self):
        spec = DatasetSpec(
            name="outliers",
            default_nodes=500,
            node_types=(
                NodeTypeSpec(
                    "K",
                    ("K",),
                    (
                        PropertyGen(
                            "v", "int", outlier_kind="string", outlier_rate=0.1
                        ),
                    ),
                ),
            ),
            edge_types=(),
        )
        dataset = generate_dataset(spec, nodes=500, seed=0)
        values = [n.properties["v"] for n in dataset.graph.nodes()]
        strings = [v for v in values if isinstance(v, str)]
        integers = [v for v in values if isinstance(v, int)]
        assert strings and integers
        assert len(strings) < len(integers)

"""Per-dataset shape tests: each generator matches its paper description."""

import pytest

from repro.datasets import load_dataset
from repro.graph.statistics import label_coverage, property_fill_ratio


@pytest.fixture(scope="module")
def generated():
    names = ["POLE", "MB6", "HET.IO", "FIB25", "ICIJ", "LDBC", "CORD19", "IYP"]
    return {name: load_dataset(name, nodes=600, seed=11) for name in names}


class TestPOLE:
    def test_single_label_types(self, generated):
        for node in generated["POLE"].graph.nodes():
            assert len(node.labels) == 1

    def test_seventeen_edge_types_sixteen_labels(self, generated):
        stats = generated["POLE"].statistics()
        assert stats.edge_types == 17
        assert stats.edge_labels == 16  # CALLED is shared

    def test_full_label_coverage(self, generated):
        assert label_coverage(generated["POLE"].graph) == 1.0


class TestConnectomes:
    @pytest.mark.parametrize("name", ["MB6", "FIB25"])
    def test_multilabel_nodes(self, generated, name):
        dataset = generated[name]
        max_labels = max(len(n.labels) for n in dataset.graph.nodes())
        assert max_labels >= 3  # Meta carries 5, Neuron 4

    @pytest.mark.parametrize("name", ["MB6", "FIB25"])
    def test_ten_node_labels(self, generated, name):
        assert generated[name].statistics().node_labels == 10

    @pytest.mark.parametrize("name", ["MB6", "FIB25"])
    def test_shared_connects_to_label(self, generated, name):
        dataset = generated[name]
        connects = {
            type_name
            for edge_id, type_name in dataset.edge_truth.items()
            if "ConnectsTo" in dataset.graph.edge(edge_id).labels
        }
        assert len(connects) == 2  # Neuron-Neuron and Segment-Segment

    def test_mb6_more_pattern_diverse_than_fib25(self, generated):
        # Paper: MB6 has 52 node patterns, FIB25 has 31.
        assert (
            generated["MB6"].statistics().node_patterns
            >= generated["FIB25"].statistics().node_patterns
        )


class TestHETIO:
    def test_every_node_has_extra_integration_label(self, generated):
        for node in generated["HET.IO"].graph.nodes():
            assert "HetionetNode" in node.labels
            assert len(node.labels) == 2

    def test_twelve_labels_eleven_types(self, generated):
        stats = generated["HET.IO"].statistics()
        assert stats.node_labels == 12
        assert stats.node_types == 11


class TestICIJ:
    def test_six_labels_five_types(self, generated):
        stats = generated["ICIJ"].statistics()
        assert stats.node_labels == 6
        assert stats.node_types == 5

    def test_high_structural_heterogeneity(self, generated):
        # Low fill ratio = many optional properties = many patterns.
        assert property_fill_ratio(generated["ICIJ"].graph) < 0.5


class TestLDBC:
    def test_message_superlabel(self, generated):
        dataset = generated["LDBC"]
        for node in dataset.graph.nodes():
            type_name = dataset.node_truth[node.node_id]
            if type_name in ("Post", "Comment"):
                assert "Message" in node.labels

    def test_low_pattern_diversity(self, generated):
        # LDBC is generated data: few patterns relative to ICIJ.
        assert (
            generated["LDBC"].statistics().node_patterns
            < generated["ICIJ"].statistics().node_patterns
        )

    def test_replyOf_two_types_one_label(self, generated):
        dataset = generated["LDBC"]
        reply_types = {
            type_name
            for edge_id, type_name in dataset.edge_truth.items()
            if "replyOf" in dataset.graph.edge(edge_id).labels
        }
        assert len(reply_types) == 2


class TestCORD19:
    def test_sixteen_single_label_types(self, generated):
        stats = generated["CORD19"].statistics()
        assert stats.node_types == 16
        assert stats.node_labels == 16


class TestIYP:
    def test_provenance_properties_everywhere(self, generated):
        dataset = generated["IYP"]
        with_provenance = sum(
            1
            for node in dataset.graph.nodes()
            if "reference_org" in node.properties
        )
        assert with_provenance / dataset.graph.node_count > 0.7

    def test_qualifier_multilabels(self, generated):
        dataset = generated["IYP"]
        combos = {node.token for node in dataset.graph.nodes()}
        assert any("+" not in token for token in combos)  # bases
        assert sum(1 for token in combos if "+" in token) >= 10  # variants

    def test_shared_edge_labels_across_endpoints(self, generated):
        dataset = generated["IYP"]
        country_types = {
            type_name
            for edge_id, type_name in dataset.edge_truth.items()
            if "COUNTRY" in dataset.graph.edge(edge_id).labels
        }
        assert len(country_types) >= 3  # AS, Prefix, IXP, Org -> Country

"""Integration: the paper's robustness claims at small scale.

These mirror the Figure 4 shape assertions but run fast enough for the
unit-test suite; the benches exercise the full grid.
"""

import pytest

from repro.baselines.base import UnsupportedGraphError
from repro.baselines.gmm_schema import GMMSchema
from repro.baselines.schemi import SchemI
from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import apply_noise, load_dataset
from repro.eval.clustering_metrics import majority_f1


@pytest.fixture(scope="module")
def pole():
    return load_dataset("POLE", nodes=500, seed=6)


@pytest.fixture(scope="module")
def hetio():
    return load_dataset("HET.IO", nodes=400, seed=6)


def pg_hive_f1(dataset, method, noise, availability, seed=6):
    noisy = apply_noise(dataset, noise, availability, seed=seed)
    config = PGHiveConfig(method=method, seed=seed, post_processing=False)
    result = PGHive(config).discover(noisy.graph)
    return majority_f1(result.node_assignments(), dataset.node_truth).macro_f1


@pytest.mark.parametrize("method", list(ClusteringMethod))
class TestPGHiveRobustness:
    def test_high_noise_full_labels(self, pole, method):
        assert pg_hive_f1(pole, method, 0.4, 1.0) >= 0.9

    def test_no_labels_clean(self, pole, method):
        assert pg_hive_f1(pole, method, 0.0, 0.0) >= 0.8

    def test_half_labels_moderate_noise(self, pole, method):
        assert pg_hive_f1(pole, method, 0.2, 0.5) >= 0.8

    def test_multilabel_dataset_with_noise(self, hetio, method):
        assert pg_hive_f1(hetio, method, 0.3, 1.0) >= 0.9


class TestBaselinesDegradeOrFail:
    def test_baselines_fail_without_labels(self, pole):
        stripped = apply_noise(pole, 0.0, 0.0, seed=1)
        for baseline in (GMMSchema(seed=1), SchemI()):
            with pytest.raises(UnsupportedGraphError):
                baseline.run(stripped.graph)

    def test_schemi_below_pg_hive_on_multilabel(self, hetio):
        schemi = SchemI().run(hetio.graph)
        schemi_f1 = majority_f1(schemi.node_assignment, hetio.node_truth).macro_f1
        pg = pg_hive_f1(hetio, ClusteringMethod.ELSH, 0.0, 1.0)
        assert pg - schemi_f1 >= 0.4  # the paper's "up to 65%" direction

    def test_gmm_below_pg_hive_under_noise(self, pole):
        noisy = apply_noise(pole, 0.4, 1.0, seed=3)
        gmm = GMMSchema(seed=3).run(noisy.graph)
        gmm_f1 = majority_f1(gmm.node_assignment, pole.node_truth).macro_f1
        pg = pg_hive_f1(pole, ClusteringMethod.ELSH, 0.4, 1.0, seed=3)
        assert pg >= gmm_f1

"""Documentation sanity: README quickstart runs; required docs exist."""

from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


class TestReadmeQuickstart:
    def test_quickstart_snippet_executes(self):
        # The exact code block from README.md's Quickstart section.
        from repro import Edge, Node, PGHive, PGHiveConfig, PropertyGraph

        graph = PropertyGraph("example")
        graph.add_node(
            Node("bob", {"Person"}, {"name": "Bob", "bday": "2/5/1980"})
        )
        graph.add_node(
            Node("alice", frozenset(), {"name": "Alice", "bday": "19/12/1999"})
        )
        graph.add_node(
            Node("acme", {"Org"}, {"name": "ACME", "url": "acme.example"})
        )
        graph.add_edge(Edge("e1", "bob", "acme", {"WORKS_AT"}, {"from": 2000}))

        result = PGHive(PGHiveConfig()).discover(graph)
        text = result.to_pg_schema()
        assert "CREATE GRAPH TYPE" in text
        summary = result.schema.summary()
        assert summary["node_types"] >= 2

        # Claims made in the README about this snippet:
        person = result.schema.node_type_by_token("Person")
        assert "alice" in person.instance_ids
        from repro import DataType

        assert person.properties["bday"].data_type is DataType.DATE
        works_at = result.schema.edge_type_by_token("WORKS_AT")
        assert works_at.properties["from"].data_type is DataType.INTEGER
        assert works_at.cardinality is not None


class TestReadmeSessionQuickstart:
    def test_session_snippet_executes(self, tmp_path):
        # The session code block from README.md's Quickstart section.
        from repro import ChangeSet, Edge, Node, SchemaSession

        session = SchemaSession(schema_name="example")
        events = []
        session.subscribe(events.append)

        session.apply(ChangeSet.inserts(
            nodes=[
                Node("bob", {"Person"}, {"name": "Bob", "bday": "2/5/1980"}),
                Node("alice", frozenset(),
                     {"name": "Alice", "bday": "19/12/1999"}),
                Node("acme", {"Org"}, {"name": "ACME", "url": "acme.example"}),
            ],
            edges=[Edge("e1", "bob", "acme", {"WORKS_AT"}, {"from": 2000})],
        ))

        schema = session.schema()
        assert schema.summary()["node_types"] >= 2
        assert events and not events[0].diff.is_empty

        # Claims made in the README about this snippet:
        person = schema.node_type_by_token("Person")
        assert "alice" in person.instance_ids
        from repro import DataType

        assert person.properties["bday"].data_type is DataType.DATE
        works_at = schema.edge_type_by_token("WORKS_AT")
        assert works_at.properties["from"].data_type is DataType.INTEGER
        assert works_at.cardinality is not None

        path = session.checkpoint(tmp_path / "example.ckpt")
        resumed = SchemaSession.restore(path)
        from repro import schema_fingerprint

        assert schema_fingerprint(resumed.schema_graph) == schema_fingerprint(
            schema
        )


class TestReadmeShardedQuickstart:
    def test_sharded_snippet_executes(self, tmp_path):
        # The sharded code block from README.md's Quickstart section
        # (serial shards here; parallel mode is pinned in
        # tests/core/test_sharding.py).
        from repro import Edge, Node, PGHiveConfig, PropertyGraph, ShardedSchemaSession
        from repro.graph.json_io import iter_changesets_jsonl, write_graph_jsonl

        graph = PropertyGraph("events")
        for serial in range(12):
            label = "Person" if serial % 2 else "Org"
            graph.add_node(
                Node(f"v{serial}", {label}, {f"{label.lower()}_id": serial})
            )
        for serial in range(8):
            graph.add_edge(
                Edge(
                    f"r{serial}",
                    f"v{serial % 12}",
                    f"v{(serial + 3) % 12}",
                    {"REL"},
                )
            )
        path = write_graph_jsonl(graph, tmp_path / "events.jsonl")

        with ShardedSchemaSession(PGHiveConfig(), n_shards=4) as session:
            for change_set in iter_changesets_jsonl(path, batch_size=5):
                session.apply(change_set)
            summary = session.schema().summary()
            assert summary["node_types"] >= 2
            assert summary["node_instances"] == 12
            directory = session.checkpoint(tmp_path / "discovery.ckpt")
        assert (directory / "manifest.ckpt").exists()


class TestRequiredDocuments:
    def test_design_document_covers_every_figure(self):
        design = (REPO / "DESIGN.md").read_text()
        for artefact in (
            "Table 1",
            "Table 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figure 8",
        ):
            assert artefact in design, f"DESIGN.md missing {artefact}"

    def test_experiments_document_records_deviations(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        assert "SchemI runtime" in experiments
        assert "Nemenyi" in experiments
        assert "reproduced" in experiments

    def test_readme_documents_examples(self):
        readme = (REPO / "README.md").read_text()
        for example in sorted((REPO / "examples").glob("*.py")):
            assert example.name in readme, f"README.md missing {example.name}"

    def test_every_bench_mapped_in_design(self):
        design = (REPO / "DESIGN.md").read_text()
        for bench in sorted((REPO / "benchmarks").glob("bench_*.py")):
            if bench.name in ("bench_common.py",):
                continue
            assert bench.name in design or bench.stem.split("_", 1)[1] in design, (
                f"DESIGN.md does not reference {bench.name}"
            )

"""Smoke tests: every example script runs cleanly as a subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize(
    "script,expected",
    [
        ("quickstart.py", "Discovered 4 node types"),
        ("social_network_discovery.py", "node F1*"),
        ("incremental_streaming.py", "final schema"),
        ("heterogeneous_integration.py", "cannot run"),
        ("schema_export.py", "candidate keys"),
    ],
)
def test_example_runs(script, expected, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # scripts must not depend on the working directory
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout

"""Integration: full discovery on every generated dataset."""

import pytest

from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import dataset_names, load_dataset
from repro.eval.clustering_metrics import majority_f1

SMALL = {
    "POLE": 400,
    "MB6": 400,
    "HET.IO": 400,
    "FIB25": 400,
    "ICIJ": 400,
    "LDBC": 400,
    "CORD19": 500,
    "IYP": 700,
}


@pytest.mark.parametrize("name", dataset_names())
@pytest.mark.parametrize("method", list(ClusteringMethod))
class TestDiscoveryOnAllDatasets:
    def test_high_f1_on_clean_data(self, name, method):
        dataset = load_dataset(name, nodes=SMALL[name], seed=13)
        config = PGHiveConfig(method=method, seed=13)
        result = PGHive(config).discover(dataset.graph)
        node_score = majority_f1(result.node_assignments(), dataset.node_truth)
        assert node_score.macro_f1 >= 0.95, (name, method, node_score)
        edge_score = majority_f1(result.edge_assignments(), dataset.edge_truth)
        assert edge_score.macro_f1 >= 0.9, (name, method, edge_score)

    def test_schema_structures_filled(self, name, method):
        dataset = load_dataset(name, nodes=SMALL[name], seed=13)
        config = PGHiveConfig(method=method, seed=13)
        result = PGHive(config).discover(dataset.graph)
        schema = result.schema
        assert schema.node_type_count >= 1
        assert schema.edge_type_count >= 1
        for node_type in schema.node_types():
            for spec in node_type.properties.values():
                assert spec.data_type is not None
                assert spec.mandatory is not None
        for edge_type in schema.edge_types():
            assert edge_type.cardinality is not None
            assert edge_type.source_tokens and edge_type.target_tokens

"""Integration: incremental discovery agrees with static discovery."""

import pytest

from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import load_dataset
from repro.eval.clustering_metrics import majority_f1
from repro.graph.batching import split_into_batches
from repro.schema.model import subsumes


@pytest.mark.parametrize("method", list(ClusteringMethod))
@pytest.mark.parametrize("name", ["POLE", "MB6", "ICIJ"])
class TestIncrementalEquivalence:
    def test_incremental_f1_close_to_static(self, method, name):
        dataset = load_dataset(name, nodes=500, seed=21)
        config = PGHiveConfig(method=method, seed=21)
        static = PGHive(config).discover(dataset.graph)
        batches = split_into_batches(dataset.graph, 5, seed=2)
        incremental = PGHive(config).discover_incremental(batches)
        static_f1 = majority_f1(
            static.node_assignments(), dataset.node_truth
        ).macro_f1
        incremental_f1 = majority_f1(
            incremental.node_assignments(), dataset.node_truth
        ).macro_f1
        assert incremental_f1 >= static_f1 - 0.05

    def test_labelled_type_tokens_identical(self, method, name):
        dataset = load_dataset(name, nodes=500, seed=21)
        config = PGHiveConfig(method=method, seed=21)
        static = PGHive(config).discover(dataset.graph)
        batches = split_into_batches(dataset.graph, 5, seed=2)
        incremental = PGHive(config).discover_incremental(batches)
        static_tokens = {
            t.token for t in static.schema.node_types() if t.labels
        }
        incremental_tokens = {
            t.token for t in incremental.schema.node_types() if t.labels
        }
        assert incremental_tokens == static_tokens

    def test_incremental_schema_covers_static_instances(self, method, name):
        dataset = load_dataset(name, nodes=400, seed=21)
        config = PGHiveConfig(method=method, seed=21, post_processing=False)
        batches = split_into_batches(dataset.graph, 4, seed=3)
        incremental = PGHive(config).discover_incremental(batches)
        covered = set(incremental.node_assignments())
        assert covered == set(dataset.graph.node_ids())


class TestBatchCountInvariance:
    @pytest.mark.parametrize("batch_count", [1, 2, 7])
    def test_batch_count_does_not_change_labelled_types(self, batch_count):
        dataset = load_dataset("POLE", nodes=400, seed=8)
        config = PGHiveConfig(seed=8)
        batches = split_into_batches(dataset.graph, batch_count, seed=5)
        result = PGHive(config).discover_incremental(batches)
        tokens = {t.token for t in result.schema.node_types() if t.labels}
        expected = {
            "+".join(sorted(t.labels)) for t in dataset.spec.node_types
        }
        assert tokens == expected

    def test_single_batch_equals_static_subsumption(self):
        dataset = load_dataset("POLE", nodes=400, seed=8)
        config = PGHiveConfig(seed=8)
        static = PGHive(config).discover(dataset.graph)
        (batch,) = split_into_batches(dataset.graph, 1, seed=5)
        incremental = PGHive(config).discover_incremental([batch])
        assert subsumes(incremental.schema, static.schema)
        assert subsumes(static.schema, incremental.schema)

"""Integration: serialised schemas and graphs survive round trips."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.core.serialization import to_pg_schema, to_xsd
from repro.datasets import load_dataset
from repro.graph.csv_io import read_graph_csv, write_graph_csv
from repro.graph.json_io import read_graph_jsonl, write_graph_jsonl
from repro.schema.validation import ValidationMode, validate_graph


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("POLE", nodes=300, seed=4)


class TestGraphIORoundTrips:
    def test_discovery_identical_after_jsonl_roundtrip(self, dataset, tmp_path):
        path = write_graph_jsonl(dataset.graph, tmp_path / "g.jsonl")
        loaded = read_graph_jsonl(path)
        config = PGHiveConfig(seed=4)
        original = PGHive(config).discover(dataset.graph)
        reloaded = PGHive(config).discover(loaded)
        assert original.node_assignments() == reloaded.node_assignments()
        assert original.edge_assignments() == reloaded.edge_assignments()

    def test_discovery_equivalent_after_csv_roundtrip(self, dataset, tmp_path):
        write_graph_csv(dataset.graph, tmp_path)
        loaded = read_graph_csv(tmp_path)
        config = PGHiveConfig(seed=4)
        original = PGHive(config).discover(dataset.graph)
        reloaded = PGHive(config).discover(loaded)
        original_tokens = {t.token for t in original.schema.node_types()}
        reloaded_tokens = {t.token for t in reloaded.schema.node_types()}
        assert original_tokens == reloaded_tokens


class TestSchemaExports:
    def test_discovered_schema_validates_its_own_graph_loose(self, dataset):
        result = PGHive(PGHiveConfig(seed=4)).discover(dataset.graph)
        report = validate_graph(
            dataset.graph, result.schema, ValidationMode.LOOSE
        )
        assert report.valid, report.violations[:5]

    def test_discovered_schema_validates_its_own_graph_strict(self, dataset):
        result = PGHive(PGHiveConfig(seed=4)).discover(dataset.graph)
        report = validate_graph(
            dataset.graph, result.schema, ValidationMode.STRICT
        )
        assert report.valid, report.violations[:5]

    def test_pg_schema_text_stable(self, dataset):
        config = PGHiveConfig(seed=4)
        first = to_pg_schema(PGHive(config).discover(dataset.graph).schema)
        second = to_pg_schema(PGHive(config).discover(dataset.graph).schema)
        assert first == second

    def test_xsd_parses_for_every_dataset_schema(self, dataset):
        result = PGHive(PGHiveConfig(seed=4)).discover(dataset.graph)
        root = ElementTree.fromstring(to_xsd(result.schema))
        assert len(list(root)) > 0

"""Integration tests for the bench harness and experiment drivers."""

import pytest

from repro.bench.experiments import (
    figure3_ranking,
    figure4_series,
    figure5_series,
    figure6_heatmap,
    figure7_incremental,
    figure8_sampling_errors,
    headline_summary,
    run_quality_grid,
)
from repro.bench.harness import (
    NOISE_LEVELS,
    PGHiveMethod,
    all_methods,
    bench_scale,
    evaluate_on,
    format_table,
)
from repro.core.config import ClusteringMethod
from repro.datasets import apply_noise, load_dataset


@pytest.fixture(scope="module")
def small_dataset():
    return load_dataset("POLE", nodes=250, seed=30)


@pytest.fixture(scope="module")
def tiny_grid(small_dataset):
    return run_quality_grid(
        [small_dataset],
        noise_levels=(0.0, 0.4),
        availabilities=(1.0, 0.0),
        seed=30,
    )


class TestHarness:
    def test_all_methods_roster(self):
        names = [m.name for m in all_methods()]
        assert names == [
            "PG-HIVE-ELSH",
            "PG-HIVE-MinHash",
            "GMM",
            "SchemI",
        ]

    def test_evaluate_on_scores_and_times(self, small_dataset):
        method = PGHiveMethod(ClusteringMethod.ELSH, seed=30)
        case = evaluate_on(method, small_dataset, 0.0, 1.0)
        assert case.supported
        assert case.node_f1 is not None and case.node_f1 > 0.9
        assert case.edge_f1 is not None
        assert case.seconds > 0

    def test_evaluate_on_unsupported(self, small_dataset):
        from repro.baselines.schemi import SchemI

        stripped = apply_noise(small_dataset, 0.0, 0.0, seed=1)
        case = evaluate_on(SchemI(), stripped, 0.0, 0.0)
        assert not case.supported
        assert case.node_f1 is None

    def test_format_table(self):
        table = format_table(
            ["a", "bb"], [[1, 0.5], [None, True]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "0.500" in table
        assert "-" in table
        assert "yes" in table

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("PGHIVE_SCALE", "0.5")
        assert bench_scale(1.0) == 0.5
        monkeypatch.setenv("PGHIVE_SCALE", "junk")
        assert bench_scale(1.0) == 1.0
        monkeypatch.setenv("PGHIVE_SCALE", "-2")
        assert bench_scale(1.0) == 1.0
        monkeypatch.delenv("PGHIVE_SCALE")
        assert bench_scale(0.3) == 0.3


class TestGridDrivers:
    def test_grid_shape(self, tiny_grid):
        # 1 dataset x 2 availabilities x 2 noise x 4 methods.
        assert len(tiny_grid.cases) == 16
        assert set(tiny_grid.method_names()) == {
            "PG-HIVE-ELSH",
            "PG-HIVE-MinHash",
            "GMM",
            "SchemI",
        }

    def test_select_filters(self, tiny_grid):
        subset = tiny_grid.select(noise=0.4, availability=1.0)
        assert len(subset) == 4
        assert all(c.noise == 0.4 for c in subset)

    def test_figure3_excludes_gmm_from_edges(self, tiny_grid):
        nodes_result, edges_result = figure3_ranking(tiny_grid)
        assert "GMM" in nodes_result.ranks
        assert "GMM" not in edges_result.ranks

    def test_figure4_series_baselines_absent_without_labels(self, tiny_grid):
        series = figure4_series(tiny_grid, "nodes")
        gmm_rows = [row for row in series if row[2] == "GMM"]
        availabilities = {row[1] for row in gmm_rows}
        assert availabilities == {1.0}

    def test_figure5_series_rows(self, tiny_grid):
        series = figure5_series(tiny_grid)
        assert {row[1] for row in series} == set(tiny_grid.method_names())

    def test_headline_summary_keys(self, tiny_grid):
        summary = headline_summary(tiny_grid)
        assert set(summary) == {
            "max_node_f1_gain",
            "max_edge_f1_gain",
            "max_speedup_vs_schemi",
        }
        assert summary["max_node_f1_gain"] >= 0.0


class TestFigureDrivers:
    def test_figure6_heatmap(self, small_dataset):
        heatmap = figure6_heatmap(
            small_dataset, table_counts=(5, 10), alphas=(1.0,), seed=30
        )
        assert set(heatmap["cells"]) == {(5, 1.0), (10, 1.0)}
        assert 0.0 <= heatmap["adaptive_f1"] <= 1.0
        assert heatmap["adaptive_T"] >= 1

    def test_figure7_incremental(self, small_dataset):
        seconds = figure7_incremental(
            small_dataset, ClusteringMethod.MINHASH, batch_count=4, seed=30
        )
        assert len(seconds) == 4
        assert all(s >= 0 for s in seconds)

    def test_figure8_bins_normalised(self, small_dataset):
        bins = figure8_sampling_errors(
            small_dataset, ClusteringMethod.ELSH, seed=30
        )
        assert sum(bins.values()) == pytest.approx(1.0)
        assert bins["0-0.05"] >= 0.5

    def test_noise_levels_constant(self):
        assert NOISE_LEVELS == (0.0, 0.1, 0.2, 0.3, 0.4)

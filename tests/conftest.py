"""Shared fixtures: the paper's Figure 1 example graph and small helpers."""

from __future__ import annotations

import pytest

from repro.graph.model import Edge, Node, PropertyGraph


def build_figure1_graph() -> PropertyGraph:
    """The running example of the paper (Figure 1, Examples 1-8).

    Three Person nodes (Alice unlabeled), two structurally different Posts,
    one Organization, one Place, and the KNOWS / LIKES / WORKS_AT /
    LOCATED_IN relationships.
    """
    graph = PropertyGraph("figure1")
    graph.add_node(
        Node(
            "bob",
            frozenset({"Person"}),
            {"name": "Bob", "gender": "male", "bday": "2/5/1980"},
        )
    )
    graph.add_node(
        Node(
            "alice",
            frozenset(),
            {"name": "Alice", "gender": "female", "bday": "19/12/1999"},
        )
    )
    graph.add_node(
        Node(
            "john",
            frozenset({"Person"}),
            {"name": "John", "gender": "male", "bday": "24/9/2005"},
        )
    )
    graph.add_node(Node("post1", frozenset({"Post"}), {"imgFile": "screenshot.png"}))
    graph.add_node(Node("post2", frozenset({"Post"}), {"content": "bazinga!"}))
    graph.add_node(
        Node("org", frozenset({"Org."}), {"url": "example.com", "name": "Example"})
    )
    graph.add_node(Node("place", frozenset({"Place"}), {"name": "Greece"}))

    graph.add_edge(Edge("e1", "alice", "john", frozenset({"KNOWS"}), {}))
    graph.add_edge(Edge("e2", "bob", "john", frozenset({"KNOWS"}), {"since": 2025}))
    graph.add_edge(Edge("e3", "alice", "post1", frozenset({"LIKES"}), {}))
    graph.add_edge(Edge("e4", "john", "post2", frozenset({"LIKES"}), {}))
    graph.add_edge(
        Edge("e5", "bob", "org", frozenset({"WORKS_AT"}), {"from": 2000})
    )
    graph.add_edge(Edge("e6", "org", "place", frozenset({"LOCATED_IN"}), {}))
    graph.add_edge(
        Edge("e7", "john", "place", frozenset({"LOCATED_IN"}), {"from": 2025})
    )
    return graph


@pytest.fixture
def figure1_graph() -> PropertyGraph:
    """Fresh copy of the Figure 1 example graph."""
    return build_figure1_graph()

"""Unit tests for the token vocabulary."""

import numpy as np
import pytest

from repro.embedding.vocab import Vocabulary


class TestVocabulary:
    def test_add_assigns_dense_indices(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("a") == 0  # repeated adds keep the index

    def test_empty_token_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary().add("")

    def test_counts_accumulate(self):
        vocab = Vocabulary()
        vocab.add("a")
        vocab.add("a", count=3)
        assert vocab.count("a") == 4
        assert vocab.count("missing") == 0

    def test_add_sentences_skips_empty_tokens(self):
        vocab = Vocabulary().add_sentences([["a", "", "b"], ["a"]])
        assert len(vocab) == 2
        assert vocab.count("a") == 2

    def test_lookup_roundtrip(self):
        vocab = Vocabulary()
        vocab.add("Person")
        assert vocab.token(vocab.index("Person")) == "Person"
        assert vocab.index("missing") is None
        assert "Person" in vocab

    def test_iteration_order(self):
        vocab = Vocabulary().add_sentences([["c", "a"], ["b"]])
        assert list(vocab) == ["c", "a", "b"]


class TestNegativeSampling:
    def test_probabilities_sum_to_one(self):
        vocab = Vocabulary().add_sentences([["a"] * 10, ["b"] * 2, ["c"]])
        probabilities = vocab.negative_sampling_probabilities()
        assert probabilities.shape == (3,)
        assert np.isclose(probabilities.sum(), 1.0)

    def test_power_dampens_frequent_tokens(self):
        vocab = Vocabulary()
        vocab.add("frequent", count=1000)
        vocab.add("rare", count=1)
        probabilities = vocab.negative_sampling_probabilities(power=0.75)
        ratio = probabilities[0] / probabilities[1]
        assert ratio < 1000  # damped below the raw frequency ratio
        assert ratio > 1

    def test_empty_vocab(self):
        assert Vocabulary().negative_sampling_probabilities().size == 0

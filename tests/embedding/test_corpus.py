"""Unit tests for the label-corpus builder."""

from repro.embedding.corpus import build_label_corpus
from repro.graph.model import Edge, Node, PropertyGraph


class TestBuildLabelCorpus:
    def test_edge_triples(self, figure1_graph):
        corpus = build_label_corpus(figure1_graph)
        assert ["Person", "WORKS_AT", "Org."] in corpus

    def test_unlabeled_endpoints_dropped_from_sentences(self, figure1_graph):
        corpus = build_label_corpus(figure1_graph)
        # KNOWS(alice -> john): alice is unlabeled, sentence shrinks to 2.
        assert ["KNOWS", "Person"] in corpus

    def test_every_node_token_registered(self, figure1_graph):
        corpus = build_label_corpus(figure1_graph)
        tokens = {token for sentence in corpus for token in sentence}
        assert {"Person", "Post", "Org.", "Place"} <= tokens

    def test_isolated_labeled_node_gets_single_token_sentence(self):
        graph = PropertyGraph()
        graph.add_node(Node("a", {"Lonely"}))
        corpus = build_label_corpus(graph)
        assert ["Lonely"] in corpus

    def test_multilabel_combo_token(self):
        graph = PropertyGraph()
        graph.add_node(Node("a", {"Student", "Person"}))
        graph.add_node(Node("b", {"Course"}))
        graph.add_edge(Edge("e", "a", "b", {"TAKES"}))
        corpus = build_label_corpus(graph)
        assert ["Person+Student", "TAKES", "Course"] in corpus

    def test_subsampling_caps_edge_sentences(self):
        graph = PropertyGraph()
        for i in range(30):
            graph.add_node(Node(f"n{i}", {"T"}))
        edge_id = 0
        for i in range(30):
            for j in range(i + 1, 30):
                graph.add_edge(Edge(f"e{edge_id}", f"n{i}", f"n{j}", {"R"}))
                edge_id += 1
        corpus = build_label_corpus(graph, max_sentences=50, seed=0)
        edge_sentences = [s for s in corpus if len(s) == 3]
        assert len(edge_sentences) == 50

    def test_subsampling_deterministic(self, figure1_graph):
        first = build_label_corpus(figure1_graph, max_sentences=3, seed=5)
        second = build_label_corpus(figure1_graph, max_sentences=3, seed=5)
        assert first == second

    def test_fully_unlabeled_graph_yields_no_sentences(self):
        graph = PropertyGraph()
        graph.add_node(Node("a"))
        graph.add_node(Node("b"))
        graph.add_edge(Edge("e", "a", "b"))
        assert build_label_corpus(graph) == []

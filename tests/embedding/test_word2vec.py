"""Unit tests for the from-scratch skip-gram Word2Vec."""

import numpy as np
import pytest

from repro.embedding.word2vec import Word2Vec

CORPUS = [
    ["Person", "KNOWS", "Person"],
    ["Person", "WORKS_AT", "Org"],
    ["Org", "LOCATED_IN", "Place"],
    ["Person", "LIKES", "Post"],
] * 20


class TestTraining:
    def test_fit_builds_vocabulary(self):
        model = Word2Vec(dim=8, epochs=1).fit(CORPUS)
        assert "Person" in model
        assert "KNOWS" in model
        assert len(model.vocabulary) == 8

    def test_vector_shapes(self):
        model = Word2Vec(dim=12, epochs=1).fit(CORPUS)
        assert model.vector("Person").shape == (12,)
        assert model.vectors(["Person", "Org"]).shape == (2, 12)

    def test_empty_token_is_zero_vector(self):
        model = Word2Vec(dim=8).fit(CORPUS)
        assert np.allclose(model.vector(""), 0.0)

    def test_unknown_token_is_deterministic(self):
        model = Word2Vec(dim=8).fit(CORPUS)
        first = model.vector("NeverSeen")
        second = model.vector("NeverSeen")
        assert np.allclose(first, second)
        assert not np.allclose(first, 0.0)

    def test_identical_label_sets_identical_embeddings(self):
        # Two separately trained models on the same corpus agree exactly.
        left = Word2Vec(dim=8, seed=3).fit(CORPUS)
        right = Word2Vec(dim=8, seed=3).fit(CORPUS)
        assert np.allclose(left.vector("Person"), right.vector("Person"))

    def test_initial_vectors_shared_across_models(self):
        # Even models trained on different corpora agree on init vectors.
        left = Word2Vec(dim=8).fit(CORPUS)
        right = Word2Vec(dim=8).fit([["A", "B"]])
        assert np.allclose(
            left.initial_vector("Person"), right.initial_vector("Person")
        )

    def test_training_moves_vectors(self):
        model = Word2Vec(dim=8, epochs=5, seed=1).fit(CORPUS)
        trained = model.vector("Person")
        initial = model.initial_vector("Person")
        assert not np.allclose(trained, initial)

    def test_norms_bounded(self):
        model = Word2Vec(dim=8, epochs=10, learning_rate=0.1, seed=0).fit(
            CORPUS * 10
        )
        for token in model.vocabulary:
            assert np.linalg.norm(model.vector(token)) <= 5.0 + 1e-9

    def test_empty_corpus(self):
        model = Word2Vec(dim=4).fit([])
        assert len(model.vocabulary) == 0
        assert model.vector("anything").shape == (4,)


class TestSemantics:
    def test_cooccurring_tokens_more_similar_than_random(self):
        rng_corpus = []
        # "A" always appears with "B"; "C" always with "D".
        for _ in range(200):
            rng_corpus.append(["A", "B"])
            rng_corpus.append(["C", "D"])
        model = Word2Vec(dim=8, epochs=10, seed=2).fit(rng_corpus)
        assert model.similarity("A", "B") > model.similarity("A", "D")

    def test_similarity_bounds(self):
        model = Word2Vec(dim=8).fit(CORPUS)
        value = model.similarity("Person", "Org")
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    def test_similarity_with_empty_token_is_zero(self):
        model = Word2Vec(dim=8).fit(CORPUS)
        assert model.similarity("", "Person") == 0.0


class TestValidation:
    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            Word2Vec(dim=0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Word2Vec(window=0)

"""Unit tests for MinHash LSH."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.lsh.base import GroupingRule
from repro.lsh.minhash import MinHashLSH, exact_jaccard


class TestConfiguration:
    def test_invalid_tables(self):
        with pytest.raises(ConfigurationError):
            MinHashLSH(num_tables=0)

    def test_invalid_band_size(self):
        with pytest.raises(ConfigurationError):
            MinHashLSH(num_tables=4, band_size=0)


class TestSignatures:
    def test_shape(self):
        lsh = MinHashLSH(num_tables=6, band_size=2)
        signatures = lsh.signatures([{"a", "b"}, {"c"}])
        assert signatures.shape == (2, 6)

    def test_identical_sets_identical_signatures(self):
        lsh = MinHashLSH(num_tables=8)
        signatures = lsh.signatures([{"x", "y"}, {"y", "x"}])
        assert np.array_equal(signatures[0], signatures[1])

    def test_empty_sets_collide_with_each_other(self):
        lsh = MinHashLSH(num_tables=4)
        signatures = lsh.signatures([set(), set(), {"a"}])
        assert np.array_equal(signatures[0], signatures[1])
        assert not np.array_equal(signatures[0], signatures[2])

    def test_deterministic_across_instances(self):
        first = MinHashLSH(num_tables=4, seed=5).signatures([{"a", "b"}])
        second = MinHashLSH(num_tables=4, seed=5).signatures([{"a", "b"}])
        assert np.array_equal(first, second)

    def test_empty_input(self):
        assert MinHashLSH(num_tables=3).signatures([]).shape == (0, 3)


class TestJaccardEstimation:
    def test_estimate_tracks_exact_jaccard(self):
        lsh = MinHashLSH(num_tables=256, band_size=1, seed=0)
        left = set("abcdefgh")
        right = set("efghijkl")
        exact = exact_jaccard(left, right)
        estimate = lsh.estimate_jaccard(left, right)
        assert abs(estimate - exact) < 0.12

    def test_identical_sets_estimate_one(self):
        lsh = MinHashLSH(num_tables=16)
        assert lsh.estimate_jaccard({"a", "b"}, {"b", "a"}) == 1.0

    def test_disjoint_sets_estimate_near_zero(self):
        lsh = MinHashLSH(num_tables=128, seed=1)
        estimate = lsh.estimate_jaccard(set("abc"), set("xyz"))
        assert estimate < 0.1


class TestClustering:
    def test_and_rule_groups_identical_sets(self):
        lsh = MinHashLSH(num_tables=10, band_size=2, seed=0)
        sets = [{"a", "b"}, {"a", "b"}, {"c", "d"}, {"c", "d"}, {"e"}]
        clusters = lsh.cluster(sets, rule=GroupingRule.AND)
        as_sets = [set(c) for c in clusters]
        assert {0, 1} in as_sets
        assert {2, 3} in as_sets
        assert {4} in as_sets

    def test_or_rule_groups_similar_sets(self):
        lsh = MinHashLSH(num_tables=20, band_size=1, seed=0)
        base = set("abcdefghij")
        similar = set("abcdefghi")  # J = 0.9
        different = set("zyxwv")
        clusters = lsh.cluster([base, similar, different], rule=GroupingRule.OR)
        membership = {i: n for n, cluster in enumerate(clusters) for i in cluster}
        assert membership[0] == membership[1]
        assert membership[0] != membership[2]

    def test_empty_input(self):
        assert MinHashLSH(num_tables=3).cluster([]) == []


class TestExactJaccard:
    def test_basic(self):
        assert exact_jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_empty_sets_are_similar(self):
        assert exact_jaccard(set(), set()) == 1.0

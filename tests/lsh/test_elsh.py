"""Unit tests for Euclidean (p-stable) LSH."""

import numpy as np
import pytest

from repro.errors import ClusteringError, ConfigurationError
from repro.lsh.base import GroupingRule
from repro.lsh.elsh import EuclideanLSH


def blobs(seed=0, per_blob=30, spread=0.05):
    """Three well-separated Gaussian blobs in 8 dimensions."""
    rng = np.random.default_rng(seed)
    centers = np.array(
        [[0.0] * 8, [10.0] * 8, [-10.0, 10.0] * 4], dtype=float
    )
    points, labels = [], []
    for index, center in enumerate(centers):
        points.append(center + rng.normal(0, spread, (per_blob, 8)))
        labels.extend([index] * per_blob)
    return np.vstack(points), np.array(labels)


class TestConfiguration:
    def test_invalid_bucket_length(self):
        with pytest.raises(ConfigurationError):
            EuclideanLSH(bucket_length=0, num_tables=4)

    def test_invalid_tables(self):
        with pytest.raises(ConfigurationError):
            EuclideanLSH(bucket_length=1.0, num_tables=0)

    def test_invalid_hashes_per_table(self):
        with pytest.raises(ConfigurationError):
            EuclideanLSH(bucket_length=1.0, num_tables=2, hashes_per_table=0)

    def test_bad_input_shape(self):
        lsh = EuclideanLSH(bucket_length=1.0, num_tables=2)
        with pytest.raises(ClusteringError):
            lsh.signatures(np.zeros(5))


class TestHashing:
    def test_signature_shape(self):
        lsh = EuclideanLSH(bucket_length=1.0, num_tables=6)
        vectors = np.random.default_rng(0).normal(size=(10, 4))
        assert lsh.signatures(vectors).shape == (10, 6)

    def test_identical_vectors_identical_signatures(self):
        lsh = EuclideanLSH(bucket_length=1.0, num_tables=8)
        vector = np.ones((1, 5))
        stacked = np.vstack([vector, vector])
        signatures = lsh.signatures(stacked)
        assert np.array_equal(signatures[0], signatures[1])

    def test_deterministic_under_seed(self):
        vectors = np.random.default_rng(1).normal(size=(20, 4))
        first = EuclideanLSH(1.0, 4, seed=7).signatures(vectors)
        second = EuclideanLSH(1.0, 4, seed=7).signatures(vectors)
        assert np.array_equal(first, second)

    def test_different_seed_differs(self):
        vectors = np.random.default_rng(1).normal(size=(20, 4))
        first = EuclideanLSH(1.0, 4, seed=1).signatures(vectors)
        second = EuclideanLSH(1.0, 4, seed=2).signatures(vectors)
        assert not np.array_equal(first, second)

    def test_hashes_per_table_folding(self):
        lsh = EuclideanLSH(1.0, num_tables=3, hashes_per_table=4)
        vectors = np.random.default_rng(0).normal(size=(5, 6))
        assert lsh.hash_values(vectors).shape == (5, 12)
        assert lsh.signatures(vectors).shape == (5, 3)

    def test_refit_on_dimension_change(self):
        lsh = EuclideanLSH(1.0, 4)
        lsh.signatures(np.zeros((3, 4)))
        signatures = lsh.signatures(np.zeros((3, 9)))
        assert signatures.shape == (3, 4)


class TestClustering:
    def test_separated_blobs_no_cross_cluster_mixing(self):
        points, labels = blobs()
        lsh = EuclideanLSH(bucket_length=2.0, num_tables=10, seed=0)
        clusters = lsh.cluster(points, rule=GroupingRule.AND)
        for cluster in clusters:
            cluster_labels = {labels[i] for i in cluster}
            assert len(cluster_labels) == 1, "AND rule must not mix blobs"

    def test_or_rule_recovers_blobs(self):
        points, labels = blobs()
        lsh = EuclideanLSH(bucket_length=2.0, num_tables=10, seed=0)
        clusters = lsh.cluster(points, rule=GroupingRule.OR)
        # With buckets wider than the blob spread the OR rule reunites each
        # blob; three pure clusters result.
        assert len(clusters) == 3
        for cluster in clusters:
            assert len({labels[i] for i in cluster}) == 1

    def test_wide_bucket_merges_everything_or_rule(self):
        points, _ = blobs(spread=0.01)
        lsh = EuclideanLSH(bucket_length=1000.0, num_tables=4, seed=0)
        clusters = lsh.cluster(points, rule=GroupingRule.OR)
        assert len(clusters) == 1

    def test_narrow_bucket_fragments(self):
        points, _ = blobs(spread=1.0)
        narrow = EuclideanLSH(bucket_length=0.01, num_tables=4, seed=0)
        wide = EuclideanLSH(bucket_length=100.0, num_tables=4, seed=0)
        assert len(narrow.cluster(points)) > len(wide.cluster(points))

"""Equivalence and caching tests for the vectorized MinHash kernel.

The batched uint64 kernel must be bit-identical to the seed's scalar
object-dtype implementation (kept as ``scalar_signature``), and the
signature/token caches must never change what a signature looks like --
only how often it is computed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh.minhash import (
    _EMPTY_SENTINEL,
    _MERSENNE_PRIME,
    _mulmod_p61,
    MinHashLSH,
    exact_jaccard,
    scalar_signature,
)

token_sets = st.sets(
    st.text(alphabet="abcdefghijklmnop", min_size=1, max_size=6),
    min_size=0,
    max_size=24,
)


class TestKernelExactness:
    @given(
        a=st.integers(min_value=0, max_value=_MERSENNE_PRIME - 1),
        x=st.integers(min_value=0, max_value=_MERSENNE_PRIME - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_mulmod_matches_bigint_arithmetic(self, a, x):
        got = _mulmod_p61(
            np.array([a], dtype=np.uint64), np.array([x], dtype=np.uint64)
        )
        assert int(got[0]) == (a * x) % _MERSENNE_PRIME

    def test_mulmod_extremes(self):
        top = _MERSENNE_PRIME - 1
        for a in (0, 1, top):
            for x in (0, 1, top):
                got = _mulmod_p61(
                    np.array([a], dtype=np.uint64),
                    np.array([x], dtype=np.uint64),
                )
                assert int(got[0]) == (a * x) % _MERSENNE_PRIME


class TestScalarEquivalence:
    @given(tokens=token_sets)
    @settings(max_examples=100, deadline=None)
    def test_signature_bit_identical_to_scalar_path(self, tokens):
        lsh = MinHashLSH(num_tables=12, band_size=2, seed=13)
        assert np.array_equal(lsh.signature(tokens), scalar_signature(lsh, tokens))

    @given(sets=st.lists(token_sets, min_size=0, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_batch_bit_identical_to_scalar_path(self, sets):
        lsh = MinHashLSH(num_tables=8, band_size=1, seed=29)
        batch = lsh.signatures_batch(sets)
        assert batch.shape == (len(sets), lsh.total_hashes)
        for row, tokens in enumerate(sets):
            assert np.array_equal(batch[row], scalar_signature(lsh, tokens))

    def test_chunked_kernel_matches_unchunked(self, monkeypatch):
        # Force the kernel into many tiny chunks; results must not change.
        import repro.lsh.minhash as minhash_module

        sets = [frozenset({f"t{i}", f"u{i % 7}", "shared"}) for i in range(64)]
        reference = MinHashLSH(num_tables=6, seed=3).signatures_batch(sets)
        monkeypatch.setattr(minhash_module, "_CHUNK_BUDGET", 8)
        chunked = MinHashLSH(num_tables=6, seed=3).signatures_batch(sets)
        assert np.array_equal(reference, chunked)


class TestEmptySetEdge:
    def test_empty_sets_sign_as_sentinel_row(self):
        lsh = MinHashLSH(num_tables=5, band_size=2)
        signature = lsh.signature(set())
        assert np.all(signature == _EMPTY_SENTINEL)

    def test_estimate_jaccard_of_two_empty_sets_is_one(self):
        # Regression: must agree with exact_jaccard(set(), set()) == 1.0.
        lsh = MinHashLSH(num_tables=16, seed=4)
        assert lsh.estimate_jaccard(set(), set()) == 1.0
        assert exact_jaccard(set(), set()) == 1.0

    def test_empty_vs_nonempty_estimates_zero(self):
        lsh = MinHashLSH(num_tables=16, seed=4)
        assert lsh.estimate_jaccard(set(), {"a"}) == 0.0

    def test_empty_sets_mixed_into_batch(self):
        lsh = MinHashLSH(num_tables=7, seed=9)
        batch = lsh.signatures_batch([set(), {"a"}, set(), {"b", "c"}])
        assert np.all(batch[0] == _EMPTY_SENTINEL)
        assert np.array_equal(batch[0], batch[2])
        assert not np.all(batch[1] == _EMPTY_SENTINEL)


class TestSignatureCache:
    def test_cache_hit_returns_identical_values(self):
        lsh = MinHashLSH(num_tables=10, seed=2)
        first = lsh.signatures_batch([{"a", "b"}, {"c"}])
        assert len(lsh._signature_cache) == 2
        second = lsh.signatures_batch([{"c"}, {"b", "a"}, {"d"}])
        assert len(lsh._signature_cache) == 3
        assert np.array_equal(first[0], second[1])
        assert np.array_equal(first[1], second[0])

    def test_cached_and_fresh_instances_agree(self):
        sets = [frozenset({"x", "y"}), frozenset({"z"}), frozenset()]
        warm = MinHashLSH(num_tables=9, band_size=2, seed=6)
        warm.signatures_batch(sets)  # warm the cache
        again = warm.signatures(sets)
        cold = MinHashLSH(num_tables=9, band_size=2, seed=6).signatures(sets)
        assert np.array_equal(again, cold)

    def test_token_ids_shared_across_instances(self):
        from repro.lsh.minhash import _TOKEN_ID_CACHE, _token_id

        value = _token_id("cache-probe-token")
        assert _TOKEN_ID_CACHE["cache-probe-token"] == value
        assert _token_id("cache-probe-token") == value


class TestBandedBehaviourPreserved:
    def test_signatures_shape_and_grouping(self):
        lsh = MinHashLSH(num_tables=6, band_size=3, seed=0)
        signatures = lsh.signatures([{"a"}, {"a"}, {"b"}])
        assert signatures.shape == (3, 6)
        assert np.array_equal(signatures[0], signatures[1])
        assert not np.array_equal(signatures[0], signatures[2])

    def test_estimate_tracks_exact_jaccard(self):
        lsh = MinHashLSH(num_tables=256, band_size=1, seed=0)
        left, right = set("abcdefgh"), set("efghijkl")
        estimate = lsh.estimate_jaccard(left, right)
        assert abs(estimate - exact_jaccard(left, right)) < 0.12

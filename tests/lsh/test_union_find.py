"""Unit tests for the disjoint-set forest."""

import pytest

from repro.lsh.union_find import UnionFind


class TestUnionFind:
    def test_initially_disjoint(self):
        union = UnionFind(4)
        assert union.component_count == 4
        assert not union.connected(0, 1)

    def test_union_connects(self):
        union = UnionFind(4)
        assert union.union(0, 1) is True
        assert union.connected(0, 1)
        assert union.component_count == 3

    def test_union_same_component_is_noop(self):
        union = UnionFind(3)
        union.union(0, 1)
        assert union.union(1, 0) is False
        assert union.component_count == 2

    def test_transitivity(self):
        union = UnionFind(5)
        union.union(0, 1)
        union.union(1, 2)
        assert union.connected(0, 2)
        assert not union.connected(0, 3)

    def test_groups_ordered_by_smallest_member(self):
        union = UnionFind(6)
        union.union(4, 5)
        union.union(1, 2)
        groups = union.groups()
        assert groups == [[0], [1, 2], [3], [4, 5]]

    def test_find_path_compression_consistent(self):
        union = UnionFind(100)
        for i in range(99):
            union.union(i, i + 1)
        root = union.find(0)
        assert all(union.find(i) == root for i in range(100))
        assert union.component_count == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_empty(self):
        union = UnionFind(0)
        assert len(union) == 0
        assert union.groups() == []

"""Unit tests for LSH grouping rules and collision-probability theory."""

import numpy as np
import pytest

from repro.lsh.base import (
    GroupingRule,
    and_rule_probability,
    elsh_collision_probability,
    group,
    group_by_any_table,
    group_by_signature,
    or_rule_probability,
)


class TestGroupBySignature:
    def test_identical_rows_cluster(self):
        signatures = np.array([[1, 2], [1, 2], [3, 4]])
        assert group_by_signature(signatures) == [[0, 1], [2]]

    def test_all_distinct(self):
        signatures = np.array([[1, 1], [1, 2], [2, 1]])
        assert group_by_signature(signatures) == [[0], [1], [2]]

    def test_partial_agreement_not_enough(self):
        # AND rule: sharing one of two tables does not cluster.
        signatures = np.array([[1, 2], [1, 3]])
        assert group_by_signature(signatures) == [[0], [1]]


class TestGroupByAnyTable:
    def test_single_table_agreement_clusters(self):
        signatures = np.array([[1, 2], [1, 3]])
        assert group_by_any_table(signatures) == [[0, 1]]

    def test_transitive_union(self):
        signatures = np.array([[1, 9], [1, 5], [7, 5]])
        # 0~1 via table 0, 1~2 via table 1 -> all together.
        assert group_by_any_table(signatures) == [[0, 1, 2]]

    def test_disjoint_stays_apart(self):
        signatures = np.array([[1, 2], [3, 4]])
        assert group_by_any_table(signatures) == [[0], [1]]


class TestGroupDispatch:
    def test_rules_differ(self):
        signatures = np.array([[1, 2], [1, 3]])
        assert group(signatures, GroupingRule.AND) == [[0], [1]]
        assert group(signatures, GroupingRule.OR) == [[0, 1]]

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            group(np.zeros(3), GroupingRule.AND)


class TestCollisionProbabilities:
    def test_zero_distance_certain_collision(self):
        assert elsh_collision_probability(0.0, 1.0) == 1.0

    def test_decreasing_in_distance(self):
        probabilities = [
            elsh_collision_probability(d, 2.0) for d in (0.1, 0.5, 1.0, 4.0, 10.0)
        ]
        assert all(
            earlier > later
            for earlier, later in zip(probabilities, probabilities[1:])
        )

    def test_increasing_in_bucket_length(self):
        narrow = elsh_collision_probability(1.0, 0.5)
        wide = elsh_collision_probability(1.0, 4.0)
        assert wide > narrow

    def test_probability_bounds(self):
        for distance in (0.01, 1.0, 100.0):
            for bucket in (0.1, 1.0, 10.0):
                p = elsh_collision_probability(distance, bucket)
                assert 0.0 <= p <= 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            elsh_collision_probability(-1.0, 1.0)
        with pytest.raises(ValueError):
            elsh_collision_probability(1.0, 0.0)

    def test_or_rule_formula(self):
        # 1 - (1 - p)^T from section 4.2.
        assert or_rule_probability(0.3, 1) == pytest.approx(0.3)
        assert or_rule_probability(0.3, 2) == pytest.approx(1 - 0.7**2)
        assert or_rule_probability(0.0, 10) == 0.0
        assert or_rule_probability(1.0, 3) == 1.0

    def test_or_rule_increases_with_tables(self):
        assert or_rule_probability(0.2, 10) > or_rule_probability(0.2, 2)

    def test_and_rule_decreases_with_tables(self):
        assert and_rule_probability(0.9, 10) < and_rule_probability(0.9, 2)

    def test_rule_argument_validation(self):
        with pytest.raises(ValueError):
            or_rule_probability(1.5, 2)
        with pytest.raises(ValueError):
            and_rule_probability(0.5, 0)

"""Unit tests for the SchemI baseline."""

import pytest

from repro.baselines.base import UnsupportedGraphError
from repro.baselines.schemi import SchemI
from repro.datasets import apply_noise, load_dataset
from repro.eval.clustering_metrics import majority_f1
from repro.graph.model import Edge, Node, PropertyGraph


@pytest.fixture(scope="module")
def pole():
    return load_dataset("POLE", nodes=600, seed=5)


@pytest.fixture(scope="module")
def mb6():
    return load_dataset("MB6", nodes=800, seed=5)


class TestPreconditions:
    def test_rejects_unlabeled_nodes(self, pole):
        stripped = apply_noise(pole, label_availability=0.0, seed=1)
        with pytest.raises(UnsupportedGraphError):
            SchemI().run(stripped.graph)

    def test_rejects_unlabeled_edges(self):
        graph = PropertyGraph()
        graph.add_node(Node("a", {"A"}))
        graph.add_node(Node("b", {"B"}))
        graph.add_edge(Edge("e", "a", "b"))  # no edge label
        with pytest.raises(UnsupportedGraphError):
            SchemI().run(graph)


class TestBehaviour:
    def test_single_label_dataset_perfect(self, pole):
        result = SchemI().run(pole.graph)
        score = majority_f1(result.node_assignment, pole.node_truth)
        assert score.macro_f1 >= 0.99

    def test_multilabel_dataset_collapses(self, mb6):
        # MB6 types share the Segment/mb6 labels; shared-label unification
        # collapses them (Table 1: SchemI has no multi-label support).
        result = SchemI().run(mb6.graph)
        score = majority_f1(result.node_assignment, mb6.node_truth)
        assert score.macro_f1 < 0.6
        assert result.node_cluster_count < len(mb6.spec.node_types)

    def test_edge_types_by_label_only(self, mb6):
        # MB6 has 5 ground-truth edge types over 3 labels; SchemI finds 3.
        result = SchemI().run(mb6.graph)
        assert result.edge_cluster_count == 3

    def test_property_noise_does_not_change_assignment(self, pole):
        clean = SchemI().run(pole.graph)
        noisy_dataset = apply_noise(pole, property_noise=0.4, seed=3)
        noisy = SchemI().run(noisy_dataset.graph)
        assert clean.node_assignment == noisy.node_assignment

    def test_every_element_assigned(self, pole):
        result = SchemI().run(pole.graph)
        assert set(result.node_assignment) == set(pole.graph.node_ids())
        assert set(result.edge_assignment) == set(pole.graph.edge_ids())

"""Unit tests for the common method interface."""

import pytest

from repro.baselines.base import (
    MethodResult,
    SchemaDiscoveryMethod,
    UnsupportedGraphError,
)
from repro.graph.model import Node, PropertyGraph


class _Dummy(SchemaDiscoveryMethod):
    name = "dummy"
    requires_full_labels = True

    def _run(self, graph):
        return MethodResult(
            method=self.name,
            node_assignment={n.node_id: "c0" for n in graph.nodes()},
            edge_assignment={},
            seconds=0.0,
        )


class TestSchemaDiscoveryMethod:
    def test_run_times_execution(self):
        graph = PropertyGraph()
        graph.add_node(Node("a", {"T"}))
        result = _Dummy().run(graph)
        assert result.seconds >= 0.0
        assert result.node_assignment == {"a": "c0"}

    def test_precondition_enforced(self):
        graph = PropertyGraph()
        graph.add_node(Node("a"))
        with pytest.raises(UnsupportedGraphError):
            _Dummy().run(graph)

    def test_base_run_not_implemented(self):
        graph = PropertyGraph()
        method = SchemaDiscoveryMethod()
        with pytest.raises(NotImplementedError):
            method.run(graph)


class TestMethodResult:
    def test_cluster_counts(self):
        result = MethodResult(
            method="m",
            node_assignment={"a": "x", "b": "x", "c": "y"},
            edge_assignment={"e": "z"},
            seconds=1.0,
        )
        assert result.node_cluster_count == 2
        assert result.edge_cluster_count == 1

    def test_edge_cluster_count_when_unsupported(self):
        result = MethodResult(
            method="m", node_assignment={}, edge_assignment=None, seconds=0.0
        )
        assert result.edge_cluster_count == 0

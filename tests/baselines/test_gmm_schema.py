"""Unit tests for the GMMSchema baseline."""

import pytest

from repro.baselines.base import UnsupportedGraphError
from repro.baselines.gmm_schema import GMMSchema
from repro.datasets import apply_noise, load_dataset
from repro.eval.clustering_metrics import majority_f1


@pytest.fixture(scope="module")
def pole():
    return load_dataset("POLE", nodes=600, seed=5)


class TestPreconditions:
    def test_rejects_unlabeled_nodes(self, pole):
        stripped = apply_noise(pole, label_availability=0.5, seed=1)
        with pytest.raises(UnsupportedGraphError):
            GMMSchema(seed=0).run(stripped.graph)

    def test_accepts_fully_labeled(self, pole):
        result = GMMSchema(seed=0).run(pole.graph)
        assert len(result.node_assignment) == pole.graph.node_count


class TestBehaviour:
    def test_no_edge_types(self, pole):
        result = GMMSchema(seed=0).run(pole.graph)
        assert result.edge_assignment is None
        assert result.edge_cluster_count == 0

    def test_clean_data_high_f1(self, pole):
        result = GMMSchema(seed=0).run(pole.graph)
        score = majority_f1(result.node_assignment, pole.node_truth)
        assert score.macro_f1 >= 0.9

    def test_noise_degrades_f1(self, pole):
        # Average over noise realisations: a single draw can get lucky.
        clean = GMMSchema(seed=1).run(pole.graph)
        clean_f1 = majority_f1(clean.node_assignment, pole.node_truth).macro_f1
        noisy_scores = []
        for noise_seed in (2, 3, 4):
            noisy_dataset = apply_noise(pole, property_noise=0.4, seed=noise_seed)
            noisy = GMMSchema(seed=1).run(noisy_dataset.graph)
            noisy_scores.append(
                majority_f1(noisy.node_assignment, pole.node_truth).macro_f1
            )
        mean_noisy = sum(noisy_scores) / len(noisy_scores)
        assert mean_noisy < clean_f1 - 0.05, (clean_f1, noisy_scores)

    def test_sampling_mode(self, pole):
        sampled = GMMSchema(seed=0, sample_size=100).run(pole.graph)
        assert len(sampled.node_assignment) == pole.graph.node_count

    def test_extras_reported(self, pole):
        result = GMMSchema(seed=0).run(pole.graph)
        assert result.extras["components"] >= 1
        assert "bic" in result.extras

    def test_timing_recorded(self, pole):
        result = GMMSchema(seed=0).run(pole.graph)
        assert result.seconds > 0.0

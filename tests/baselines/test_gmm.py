"""Unit tests for the from-scratch Gaussian mixture (EM + BIC)."""

import numpy as np
import pytest

from repro.baselines.gmm import GaussianMixture, select_components_by_bic
from repro.errors import ClusteringError


def two_blobs(seed=0, per_blob=100):
    rng = np.random.default_rng(seed)
    left = rng.normal(0.0, 0.3, (per_blob, 3))
    right = rng.normal(5.0, 0.3, (per_blob, 3))
    return np.vstack([left, right])


class TestFitting:
    def test_two_components_separate_blobs(self):
        data = two_blobs()
        model = GaussianMixture(2, seed=1).fit(data)
        labels = model.predict(data)
        first_half = set(labels[:100])
        second_half = set(labels[100:])
        assert len(first_half) == 1
        assert len(second_half) == 1
        assert first_half != second_half

    def test_convergence_reported(self):
        model = GaussianMixture(2, seed=1, max_iterations=200).fit(two_blobs())
        assert model.converged
        assert model.iterations_run <= 200

    def test_log_likelihood_improves_with_right_k(self):
        data = two_blobs()
        one = GaussianMixture(1, seed=1).fit(data)
        two = GaussianMixture(2, seed=1).fit(data)
        assert two.log_likelihood > one.log_likelihood

    def test_weights_sum_to_one(self):
        model = GaussianMixture(3, seed=2).fit(two_blobs())
        assert np.isclose(model.weights.sum(), 1.0)

    def test_variance_floor_respected(self):
        # Constant data would otherwise produce zero variance.
        data = np.ones((50, 4))
        model = GaussianMixture(1, seed=0, variance_floor=1e-3).fit(data)
        assert np.all(model.variances >= 1e-3 - 1e-12)

    def test_binary_data(self):
        rng = np.random.default_rng(3)
        patterns = np.array([[1, 1, 0, 0], [0, 0, 1, 1]], dtype=float)
        data = patterns[rng.integers(0, 2, 200)]
        model = GaussianMixture(2, seed=1).fit(data)
        labels = model.predict(patterns)
        assert labels[0] != labels[1]

    def test_deterministic_under_seed(self):
        data = two_blobs()
        first = GaussianMixture(2, seed=9).fit(data).predict(data)
        second = GaussianMixture(2, seed=9).fit(data).predict(data)
        assert np.array_equal(first, second)


class TestValidation:
    def test_invalid_components(self):
        with pytest.raises(ClusteringError):
            GaussianMixture(0)

    def test_more_components_than_points(self):
        with pytest.raises(ClusteringError):
            GaussianMixture(10).fit(np.zeros((3, 2)))

    def test_predict_before_fit(self):
        with pytest.raises(ClusteringError):
            GaussianMixture(2).predict(np.zeros((3, 2)))

    def test_empty_data(self):
        with pytest.raises(ClusteringError):
            GaussianMixture(1).fit(np.zeros((0, 2)))


class TestBICSelection:
    def test_bic_prefers_true_component_count(self):
        data = two_blobs(per_blob=200)
        model = select_components_by_bic(data, [1, 2, 3, 4], seed=1)
        assert model.n_components == 2

    def test_infeasible_candidates_skipped(self):
        data = two_blobs(per_blob=5)
        model = select_components_by_bic(data, [2, 1000], seed=1)
        assert model.n_components == 2

    def test_empty_candidates_rejected(self):
        with pytest.raises(ClusteringError):
            select_components_by_bic(two_blobs(), [])

    def test_all_infeasible_rejected(self):
        with pytest.raises(ClusteringError):
            select_components_by_bic(np.zeros((2, 2)), [5, 6])

"""CLI contract: exit codes, rule listing, SARIF/baseline/stats flags,
and a clean merged tree."""

import json
import subprocess
import sys

from repro.analysis import default_analyzer
from repro.analysis.__main__ import main

from tests.analysis.conftest import FIXTURES, REPO_ROOT


def _cli(*args: str) -> subprocess.CompletedProcess:
    env_path = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )


def test_violating_file_exits_nonzero():
    process = _cli(str(FIXTURES / "api_bad.py"))
    assert process.returncode == 1
    assert "PGL501" in process.stdout
    assert "FAILED" in process.stderr


def test_clean_file_exits_zero():
    process = _cli(str(FIXTURES / "api_good.py"))
    assert process.returncode == 0
    assert process.stdout == ""
    assert "clean" in process.stderr


def test_list_rules():
    process = _cli("--list-rules")
    assert process.returncode == 0
    for rule_id in ("PGL101", "PGL102", "PGL201", "PGL301", "PGL401", "PGL501"):
        assert rule_id in process.stdout


def test_main_is_callable_in_process(capsys):
    status = main([str(FIXTURES / "suppression_meta.py")])
    assert status == 1
    captured = capsys.readouterr()
    assert "PGL001" in captured.out


def test_sarif_format_emits_valid_json_with_results():
    process = _cli(str(FIXTURES / "api_bad.py"), "--format", "sarif")
    assert process.returncode == 1
    report = json.loads(process.stdout)
    assert report["version"] == "2.1.0"
    rule_ids = {r["ruleId"] for r in report["runs"][0]["results"]}
    assert "PGL501" in rule_ids
    assert "FAILED" in process.stderr


def test_sarif_file_written_alongside_text(tmp_path):
    target = tmp_path / "report.sarif"
    process = _cli(str(FIXTURES / "api_good.py"), "--sarif", str(target))
    assert process.returncode == 0
    report = json.loads(target.read_text(encoding="utf-8"))
    assert report["version"] == "2.1.0"
    assert report["runs"][0]["results"] == []
    # stdout stays in text mode when only --sarif is given.
    assert process.stdout == ""


def test_baseline_workflow_absorbs_known_findings(tmp_path):
    bad = str(FIXTURES / "api_bad.py")
    baseline = tmp_path / "baseline.json"
    frozen = _cli(bad, "--write-baseline", str(baseline))
    assert frozen.returncode == 0
    assert "baseline" in frozen.stderr
    gated = _cli(bad, "--baseline", str(baseline))
    assert gated.returncode == 0
    assert "baselined" in gated.stderr
    assert "clean" in gated.stderr


def test_malformed_baseline_exits_two(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text('{"version": 99}', encoding="utf-8")
    process = _cli(str(FIXTURES / "api_good.py"), "--baseline", str(baseline))
    assert process.returncode == 2
    assert "baseline" in process.stderr


def test_stats_prints_suppression_inventory():
    process = _cli("src", "--stats")
    assert process.returncode == 0
    assert "Suppression inventory:" in process.stderr
    assert "PGL201" in process.stderr
    assert "--" in process.stderr  # justification text is included


def test_repo_tree_is_clean():
    """The merged tree must lint clean -- the CI gate in miniature."""
    result = default_analyzer().run([REPO_ROOT / "src", REPO_ROOT / "tests"])
    assert result.parse_errors == []
    assert result.diagnostics == [], [d.render() for d in result.diagnostics]
    assert result.suppressions_used > 0

"""CLI contract: exit codes, rule listing, and a clean merged tree."""

import subprocess
import sys

from repro.analysis import default_analyzer
from repro.analysis.__main__ import main

from tests.analysis.conftest import FIXTURES, REPO_ROOT


def _cli(*args: str) -> subprocess.CompletedProcess:
    env_path = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )


def test_violating_file_exits_nonzero():
    process = _cli(str(FIXTURES / "api_bad.py"))
    assert process.returncode == 1
    assert "PGL501" in process.stdout
    assert "FAILED" in process.stderr


def test_clean_file_exits_zero():
    process = _cli(str(FIXTURES / "api_good.py"))
    assert process.returncode == 0
    assert process.stdout == ""
    assert "clean" in process.stderr


def test_list_rules():
    process = _cli("--list-rules")
    assert process.returncode == 0
    for rule_id in ("PGL101", "PGL102", "PGL201", "PGL301", "PGL401", "PGL501"):
        assert rule_id in process.stdout


def test_main_is_callable_in_process(capsys):
    status = main([str(FIXTURES / "suppression_meta.py")])
    assert status == 1
    captured = capsys.readouterr()
    assert "PGL001" in captured.out


def test_repo_tree_is_clean():
    """The merged tree must lint clean -- the CI gate in miniature."""
    result = default_analyzer().run([REPO_ROOT / "src", REPO_ROOT / "tests"])
    assert result.parse_errors == []
    assert result.diagnostics == [], [d.render() for d in result.diagnostics]
    assert result.suppressions_used > 0

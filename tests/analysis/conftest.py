"""Shared helpers for the invariant-checker tests.

Fixture files carry ``# expect[RULE]`` markers (comma-separated for
multiple diagnostics on one line); tests compare the marker set against
the analyzer output in both directions, so a rule that over- or
under-fires fails loudly.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.framework import Analyzer, Rule

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

_EXPECT_RE = re.compile(r"#\s*expect\[([A-Z0-9,\s]+)\]")


def expected_markers(path: Path) -> set[tuple[int, str]]:
    """``(line, rule_id)`` pairs declared by ``# expect[...]`` markers."""
    expected: set[tuple[int, str]] = set()
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _EXPECT_RE.search(line)
        if match is None:
            continue
        for rule_id in match.group(1).split(","):
            expected.add((number, rule_id.strip()))
    return expected


def run_rules(rules: list[Rule], path: Path) -> set[tuple[int, str]]:
    """Unsuppressed ``(line, rule_id)`` pairs one rule set emits on a file."""
    analyzer = Analyzer(rules, check_suppressions=False)
    result = analyzer.run([path])
    assert not result.parse_errors, result.parse_errors
    return {(d.line, d.rule_id) for d in result.diagnostics}


def assert_fixture(rules: list[Rule], name: str) -> None:
    """The rule set must reproduce a fixture's markers exactly."""
    path = FIXTURES / name
    assert path.is_file(), f"missing fixture {name}"
    assert run_rules(rules, path) == expected_markers(path)


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES


@pytest.fixture
def repo_root() -> Path:
    return REPO_ROOT

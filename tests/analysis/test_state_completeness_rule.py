"""PGL200/PGL201: contract checking over fixtures and the real tree."""

import shutil

from repro.analysis.framework import Analyzer
from repro.analysis.rules.state_completeness import (
    CoverageTarget,
    StateCompletenessRule,
    StateContract,
)

from tests.analysis.conftest import FIXTURES, expected_markers, run_rules


def _contract(module_tail: str) -> StateContract:
    return StateContract(
        module_tail=module_tail,
        class_name="ShardState",
        targets=(
            CoverageTarget(
                "merge", ((module_tail, "ShardState.merge_from"),)
            ),
            CoverageTarget("encode", ((module_tail, "ShardState.encode"),)),
        ),
    )


def test_unthreaded_field_fires_per_missing_target():
    path = FIXTURES / "state_bad.py"
    rule = StateCompletenessRule(contracts=[_contract("state_bad.py")])
    # Two targets miss `witnesses`: one PGL201 per target, same line.
    analyzer = Analyzer([rule], check_suppressions=False)
    diagnostics = analyzer.run([path]).diagnostics
    assert len(diagnostics) == 2
    assert {(d.line, d.rule_id) for d in diagnostics} == expected_markers(path)
    assert all("witnesses" in d.message for d in diagnostics)


def test_fully_threaded_class_is_silent():
    rule = StateCompletenessRule(contracts=[_contract("state_good.py")])
    assert run_rules([rule], FIXTURES / "state_good.py") == set()


def test_contract_rot_is_flagged():
    bad_class = StateContract(
        module_tail="state_good.py",
        class_name="NoSuchState",
        targets=(),
    )
    bad_target = StateContract(
        module_tail="state_good.py",
        class_name="ShardState",
        targets=(
            CoverageTarget(
                "merge", (("state_good.py", "ShardState.no_such_method"),)
            ),
        ),
    )
    found = run_rules(
        [StateCompletenessRule(contracts=[bad_class, bad_target])],
        FIXTURES / "state_good.py",
    )
    assert {rule_id for _line, rule_id in found} == {"PGL200"}
    assert len(found) == 2


def test_absent_module_is_skipped():
    rule = StateCompletenessRule(contracts=[_contract("not_loaded.py")])
    assert run_rules([rule], FIXTURES / "state_good.py") == set()


def test_exempt_fields_are_not_checked():
    contract = StateContract(
        module_tail="state_bad.py",
        class_name="ShardState",
        targets=_contract("state_bad.py").targets,
        exempt=frozenset({"witnesses"}),
    )
    rule = StateCompletenessRule(contracts=[contract])
    assert run_rules([rule], FIXTURES / "state_bad.py") == set()


def test_reintroducing_a_pr5_class_bug_fails(tmp_path, repo_root):
    """Acceptance: an uncovered DiscoveryState field must fail the lint.

    Copies the real state/session modules, adds a dataclass field to
    ``DiscoveryState`` without touching merge or checkpoint, and runs
    the *default* contracts: the new field must be flagged for all three
    lifecycle targets.
    """
    src = tmp_path / "repro" / "core"
    src.mkdir(parents=True)
    for name in ("state.py", "session.py"):
        shutil.copy(repo_root / "src" / "repro" / "core" / name, src / name)
    state = src / "state.py"
    original = state.read_text()
    marker = "    dirty: bool = False\n"
    assert marker in original
    state.write_text(
        original.replace(marker, marker + "    forgotten_field: int = 0\n", 1)
    )
    result = Analyzer(
        [StateCompletenessRule()], check_suppressions=False
    ).run([src / "state.py", src / "session.py"])
    forgotten = [
        d for d in result.diagnostics if "forgotten_field" in d.message
    ]
    assert len(forgotten) == 3  # merge + checkpoint encode + decode
    assert {d.rule_id for d in forgotten} == {"PGL201"}


def test_default_contracts_match_the_real_tree(repo_root):
    """No PGL200 rot, and every real finding is a suppressed known case.

    Meta checks stay off: the tree's suppressions for other rule
    families are unknown ids to this single-rule analyzer.
    """
    result = Analyzer(
        [StateCompletenessRule()], check_suppressions=False
    ).run([repo_root / "src"])
    assert result.diagnostics == [], [d.render() for d in result.diagnostics]
    assert result.suppressions_used > 0

"""PGL801/PGL802 fire on leaks and torn mutations only."""

from repro.analysis.rules.exception_safety import (
    PartialMutationRule,
    ResourceLifecycleRule,
)

from tests.analysis.conftest import assert_fixture


def rules():
    return [ResourceLifecycleRule(scope=()), PartialMutationRule(scope=())]


def test_fires_on_leaks_and_torn_mutations():
    assert_fixture(rules(), "exception_bad.py")


def test_silent_on_owned_handles_and_safe_mutations():
    assert_fixture(rules(), "exception_good.py")

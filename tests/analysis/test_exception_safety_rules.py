"""PGL801/PGL802/PGL803 fire on leaks and torn mutations only."""

from repro.analysis.rules.exception_safety import (
    PartialMutationRule,
    ResourceLifecycleRule,
    SharedMemoryLifecycleRule,
)

from tests.analysis.conftest import assert_fixture


def rules():
    return [ResourceLifecycleRule(scope=()), PartialMutationRule(scope=())]


def shm_rules():
    return [SharedMemoryLifecycleRule(scope=())]


def test_fires_on_leaks_and_torn_mutations():
    assert_fixture(rules(), "exception_bad.py")


def test_silent_on_owned_handles_and_safe_mutations():
    assert_fixture(rules(), "exception_good.py")


def test_fires_on_leaked_or_never_unlinked_shm_handles():
    assert_fixture(shm_rules(), "shm_bad.py")


def test_silent_on_owned_and_unlinked_shm_handles():
    assert_fixture(shm_rules(), "shm_good.py")

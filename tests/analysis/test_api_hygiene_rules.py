"""PGL501/PGL502 fire on hygiene violations only."""

from repro.analysis.rules.api_hygiene import (
    AccumulatorSignatureRule,
    MutableDefaultRule,
)

from tests.analysis.conftest import assert_fixture

RULES = [MutableDefaultRule(scope=()), AccumulatorSignatureRule(scope=())]


def test_fires_on_violations():
    assert_fixture(RULES, "api_bad.py")


def test_silent_on_conforming_code():
    assert_fixture(RULES, "api_good.py")

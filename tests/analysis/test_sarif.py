"""SARIF emission: schema validity, levels, and rule-index wiring."""

import json
from pathlib import Path

import jsonschema

from repro.analysis.framework import Diagnostic, RunResult
from repro.analysis.rules import all_rules
from repro.analysis.sarif import (
    SARIF_VERSION,
    render_sarif,
    sarif_report,
)

SCHEMA = json.loads(
    (Path(__file__).parent / "sarif_schema.json").read_text(encoding="utf-8")
)


def _result_with(diagnostics, parse_errors=()):
    return RunResult(
        diagnostics=list(diagnostics),
        files_checked=3,
        parse_errors=list(parse_errors),
    )


def _diag(rule_id="PGL701", line=12):
    return Diagnostic(
        path="src/repro/core/durability.py",
        line=line,
        rule_id=rule_id,
        message="state mutation before WAL append",
    )


def test_report_validates_against_sarif_schema():
    result = _result_with(
        [_diag(), _diag("PGL901", line=44)],
        parse_errors=[Diagnostic("src/bad.py", 0, "PGL999", "invalid syntax")],
    )
    report = sarif_report(result, all_rules())
    jsonschema.validate(report, SCHEMA)
    assert report["version"] == SARIF_VERSION


def test_empty_run_still_validates():
    report = sarif_report(_result_with([]), all_rules())
    jsonschema.validate(report, SCHEMA)
    assert report["runs"][0]["results"] == []


def test_levels_split_parse_errors_from_findings():
    result = _result_with(
        [_diag()],
        parse_errors=[Diagnostic("src/bad.py", 0, "PGL999", "invalid syntax")],
    )
    results = sarif_report(result, all_rules())["runs"][0]["results"]
    by_rule = {entry["ruleId"]: entry for entry in results}
    assert by_rule["PGL999"]["level"] == "error"
    assert by_rule["PGL701"]["level"] == "warning"
    # line 0 (whole-file parse error) is clamped to SARIF's 1-based floor.
    assert (
        by_rule["PGL999"]["locations"][0]["physicalLocation"]["region"][
            "startLine"
        ]
        == 1
    )


def test_rule_index_points_at_matching_descriptor():
    result = _result_with([_diag("PGL802")])
    report = sarif_report(result, all_rules())
    run = report["runs"][0]
    entry = run["results"][0]
    descriptor = run["tool"]["driver"]["rules"][entry["ruleIndex"]]
    assert descriptor["id"] == entry["ruleId"] == "PGL802"


def test_every_shipped_rule_id_has_a_descriptor():
    report = sarif_report(_result_with([]), all_rules())
    ids = {d["id"] for d in report["runs"][0]["tool"]["driver"]["rules"]}
    for rule in all_rules():
        assert set(rule.emitted_ids()) <= ids
    assert {"PGL001", "PGL002", "PGL003", "PGL999"} <= ids


def test_render_is_deterministic_json():
    result = _result_with([_diag(), _diag("PGL901")])
    first = render_sarif(result, all_rules())
    second = render_sarif(result, all_rules())
    assert first == second
    assert json.loads(first)["version"] == SARIF_VERSION

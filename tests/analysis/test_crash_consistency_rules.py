"""PGL701/PGL702/PGL703 fire on broken crash protocols only."""

from repro.analysis.rules.crash_consistency import (
    InterprocDurableWriteRule,
    RenameFsyncRule,
    WalBeforeApplyRule,
)

from tests.analysis.conftest import assert_fixture


def rules():
    return [
        WalBeforeApplyRule(scope=()),
        InterprocDurableWriteRule(scope=()),
        RenameFsyncRule(scope=()),
    ]


def test_fires_on_broken_protocols():
    assert_fixture(rules(), "crash_bad.py")


def test_silent_on_correct_protocols():
    assert_fixture(rules(), "crash_good.py")

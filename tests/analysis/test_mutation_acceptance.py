"""Mutation acceptance: reintroduce real durability bugs, expect diagnostics.

Fixture files prove the rules *can* fire; these tests prove they fire on
the production modules they exist to protect.  Each test copies the real
source (``durability.py``, ``recovery.py``, ``columnar.py``) into a temp
tree, surgically reintroduces a bug class this codebase has actually
shipped and fixed, and asserts the matching rule flags exactly the
mutated protocol -- while the *unmutated* copy stays clean under the
same rule.  If a refactor ever reshapes these modules so a mutation
anchor disappears, the ``assert marker in source`` lines fail loudly
instead of the test silently passing on an unmutated copy.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.rules.concurrency import SharedStateMutationRule
from repro.analysis.rules.crash_consistency import (
    RenameFsyncRule,
    WalBeforeApplyRule,
)
from repro.analysis.rules.exception_safety import (
    ResourceLifecycleRule,
    SharedMemoryLifecycleRule,
)

from tests.analysis.conftest import REPO_ROOT, run_rules

CORE = REPO_ROOT / "src" / "repro" / "core"
GRAPH = REPO_ROOT / "src" / "repro" / "graph"


def _mutate(
    tmp_path: Path, original: Path, marker: str, replacement: str
) -> tuple[Path, str]:
    """Copy ``original`` with one surgical edit; returns (path, source)."""
    source = original.read_text(encoding="utf-8")
    assert source.count(marker) == 1, (
        f"mutation anchor no longer unique in {original.name}; "
        "update the mutation test"
    )
    mutated = source.replace(marker, replacement)
    target = tmp_path / original.name
    target.write_text(mutated, encoding="utf-8")
    return target, mutated


def _line_of(source: str, needle: str) -> int:
    for number, line in enumerate(source.splitlines(), start=1):
        if needle in line:
            return number
    raise AssertionError(f"{needle!r} not found in mutated source")


def test_removing_file_fsync_from_atomic_write_fires_pgl703(tmp_path):
    rule = RenameFsyncRule(scope=())
    original = CORE / "durability.py"
    assert run_rules([rule], original) == set()

    target, mutated = _mutate(
        tmp_path,
        original,
        'fire("atomic.before_fsync", path=str(temp))\n'
        "            os.fsync(handle.fileno())\n",
        'fire("atomic.before_fsync", path=str(temp))\n',
    )
    fired = run_rules([rule], target)
    rename_line = _line_of(mutated, "os.replace(temp, path)")
    assert (rename_line, "PGL703") in fired
    assert {rule_id for _, rule_id in fired} == {"PGL703"}


def test_logging_after_apply_fires_pgl701(tmp_path):
    rule = WalBeforeApplyRule(scope=())
    original = CORE / "recovery.py"
    assert run_rules([rule], original) == set()

    # The classic write-behind bug: run the in-memory apply first, log
    # afterwards.  A crash between the two loses an acknowledged batch.
    target, mutated = _mutate(
        tmp_path,
        original,
        "    sequence = session._sequence + 1\n"
        "    session._wal.append(sequence, kind + change_set.to_wire())\n"
        "    try:\n"
        "        return run()\n"
        "    except Exception:\n"
        "        if session._sequence < sequence:\n"
        "            session._wal.rollback_last()\n"
        "        raise\n",
        "    sequence = session._sequence + 1\n"
        "    result = run()\n"
        "    session._wal.append(sequence, kind + change_set.to_wire())\n"
        "    return result\n",
    )
    fired = run_rules([rule], target)
    assert fired, "PGL701 must flag the reordered WAL protocol"
    assert {rule_id for _, rule_id in fired} == {"PGL701"}
    # Every durable change-feed method routes through the reordered
    # helper, and the violation anchors inside the feed methods (the
    # inlined ``super().apply`` / ``super().add_batch`` call sites).
    apply_anchor = _line_of(
        mutated, "lambda: super(DurableSchemaSession, self).apply"
    )
    assert (apply_anchor, "PGL701") in fired


def test_dropping_handle_close_fires_pgl801(tmp_path):
    rule = ResourceLifecycleRule(scope=())
    original = CORE / "durability.py"
    assert run_rules([rule], original) == set()

    target, mutated = _mutate(
        tmp_path,
        original,
        "            self._handle.close()\n",
        "",
    )
    fired = run_rules([rule], target)
    open_line = _line_of(mutated, 'self._handle = open(path, "ab")')
    assert (open_line, "PGL801") in fired
    assert {rule_id for _, rule_id in fired} == {"PGL801"}


def test_dropping_shm_unlink_fires_pgl803(tmp_path):
    rule = SharedMemoryLifecycleRule(scope=())
    original = CORE / "shm.py"
    assert run_rules([rule], original) == set()

    # Drop the unlink half of block reclamation: every created segment
    # now outlives the process in /dev/shm.
    target, mutated = _mutate(
        tmp_path,
        original,
        "    try:\n"
        "        block.unlink()\n"
        "    except FileNotFoundError:\n"
        "        pass\n",
        "",
    )
    fired = run_rules([rule], target)
    assert fired, "PGL803 must flag the module that lost its unlink path"
    assert {rule_id for _, rule_id in fired} == {"PGL803"}
    # The obligation anchors at the create=True sites, chiefly the
    # registry's block allocation.
    create_line = _line_of(mutated, "name=_fresh_name(), create=True")
    assert any(
        abs(line - create_line) <= 2 for line, _ in fired
    ), f"diagnostics {fired} do not anchor at the registry create site"


def test_unlocked_interner_mutation_fires_pgl901(tmp_path):
    rule = SharedStateMutationRule(scope=())
    original = GRAPH / "columnar.py"
    assert run_rules([rule], original) == set()

    # Drop the lock around intern_string's slow path: the double-checked
    # re-read becomes a plain racy read-modify-write.
    target, mutated = _mutate(
        tmp_path,
        original,
        "        if sid is not None:\n"
        "            return sid\n"
        "        with self._lock:\n",
        "        if sid is not None:\n"
        "            return sid\n"
        "        if True:\n",
    )
    fired = run_rules([rule], target)
    assert fired, "PGL901 must flag the unlocked interner mutation"
    assert {rule_id for _, rule_id in fired} == {"PGL901"}
    mutation_line = _line_of(mutated, "self._strings.append(text)")
    assert any(
        abs(line - mutation_line) <= 5 for line, _ in fired
    ), f"diagnostics {fired} do not anchor in the mutated slow path"

"""Fixture: PGL101/PGL102 positives.  Never imported -- parsed only.

Each expect marker names the diagnostic the rule must emit on that
line; the unit tests assert the sets match exactly.
"""

import os
import random

import numpy as np
from time import perf_counter  # expect[PGL102]


def freeze_set(tokens):
    distinct = set(tokens)
    ordered = list(distinct)  # expect[PGL101]
    pair = tuple(distinct)  # expect[PGL101]
    return ordered, pair


def join_set(labels: set) -> str:
    return ",".join(labels)  # expect[PGL101]


def comprehension_over_set(values):
    bag = {value for value in values}
    return [value * 2 for value in bag]  # expect[PGL101]


def generator_into_ordered_sink(rows):
    ids = frozenset(rows)
    return np.fromiter((row for row in ids), dtype=np.int64)  # expect[PGL101]


def append_loop(seen: set):
    out = []
    for item in seen:  # expect[PGL101]
        out.append(item)
    return out


def enumerate_loop(seen: set):
    out = []
    for index, item in enumerate(seen):  # expect[PGL101]
        out.append((index, item))
    return out


def yielding_loop(seen: set):
    for item in seen:  # expect[PGL101]
        yield item


def set_method_result(left: set, right):
    merged = left.union(right)
    return list(merged)  # expect[PGL101]


def stamp():
    return perf_counter()


def wall_clock():
    import time

    return time.time()  # expect[PGL102]


def jitter():
    return random.random()  # expect[PGL102]


def shuffled(items):
    random.shuffle(items)  # expect[PGL102]
    return items


def unseeded_rng():
    return np.random.default_rng()  # expect[PGL102]


def global_np_stream(n):
    return np.random.rand(n)  # expect[PGL102]


def env_mode():
    return os.environ["MODE"]  # expect[PGL102]


def env_get():
    return os.getenv("MODE", "fast")  # expect[PGL102]

"""Fixture: PGL201 negative -- every field threaded through both targets."""


class ShardState:
    def __init__(self):
        self.counts = {}
        self.total = 0
        self.witnesses = []

    def merge_from(self, other):
        for key, value in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + value
        self.total += other.total
        self.witnesses.extend(other.witnesses)

    def encode(self):
        return {
            "counts": dict(self.counts),
            "total": self.total,
            "witnesses": list(self.witnesses),
        }

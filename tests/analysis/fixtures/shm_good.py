"""Fixture: PGL803 negatives -- owned, unlinked shm handles."""

import weakref
from multiprocessing import shared_memory
from multiprocessing.shared_memory import SharedMemory


def _reclaim(block):
    block.close()
    block.unlink()


def read_with(name):
    with SharedMemory(name=name) as block:
        return bytes(block.buf[:8])


def read_try_finally(name):
    block = shared_memory.SharedMemory(name=name)
    try:
        return bytes(block.buf[:8])
    finally:
        block.close()


def attach_for_caller(name):
    # Caller owns the handle.
    return SharedMemory(name=name)


def create_probe(nbytes):
    # Ownership transfers into the reclaim helper with the value.
    probe = SharedMemory(create=True, size=nbytes)
    _reclaim(probe)
    return nbytes


def create_try_finally(nbytes):
    block = SharedMemory(create=True, size=nbytes)
    try:
        return bytes(block.buf[:nbytes])
    finally:
        block.unlink()


class Registry:
    """Finalizer-owned blocks, released through the registry."""

    def __init__(self):
        self._entries = {}

    def create(self, name, nbytes):
        block = SharedMemory(name=name, create=True, size=nbytes)
        finalizer = weakref.finalize(self, _reclaim, block)
        self._entries[name] = (block, finalizer)
        return block

    def release(self, name):
        _, finalizer = self._entries.pop(name)
        finalizer()


class Holder:
    def acquire(self, name):
        # Owned by the object: released in close() below.
        self._block = SharedMemory(name=name)

    def close(self):
        self._block.close()

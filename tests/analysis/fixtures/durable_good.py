"""Fixture: PGL601 negatives -- blessed helpers and non-durable writes."""

import csv
import pickle

from repro.core.durability import write_artifact


def save_state(path, payload):
    write_artifact(path, b"demo", 1, pickle.dumps(payload))


def export_rows(path, rows):
    # Write-mode open without pickling: a CSV report, not a durable
    # pickled artifact.
    with open(path, "w", newline="") as handle:
        csv.writer(handle).writerows(rows)


def load_state(path):
    # Read-only open next to pickle is the restore path, not a write.
    with open(path, "rb") as handle:
        return pickle.load(handle)

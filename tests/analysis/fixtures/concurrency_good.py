"""Fixture: PGL901 negatives -- owner-routed and lock-guarded mutation."""

import threading

_CACHE_LOCK = threading.Lock()
_TOKEN_ID_CACHE = {}

# Not a registered shared global: mutate freely.
_SCRATCH = {}


def _token_id(token):
    ident = _TOKEN_ID_CACHE.get(token)
    if ident is None:
        ident = len(_TOKEN_ID_CACHE)
        _TOKEN_ID_CACHE[token] = ident
    return ident


def token_for(token):
    # Reads are free; mutation is routed through the owner.
    return _token_id(token)


def locked_insert(token):
    with _CACHE_LOCK:
        _TOKEN_ID_CACHE[token] = 0


def scratch_insert(key, value):
    _SCRATCH[key] = value


class Interner:
    def __init__(self):
        self._lock = threading.RLock()
        self._string_ids = {}
        self._strings = []

    def intern_string(self, text):
        with self._lock:
            ident = self._string_ids.get(text)
            if ident is None:
                ident = len(self._strings)
                self._strings.append(text)
                self._string_ids[text] = ident
            return ident

    def lookup(self, ident):
        # Pure read: no lock discipline required by the rule.
        return self._strings[ident]

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

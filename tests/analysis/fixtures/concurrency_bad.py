"""Fixture: PGL901 positives -- unguarded shared-state mutation."""

import threading

_CACHE_LOCK = threading.Lock()
_TOKEN_ID_CACHE = {}


def _token_id(token):
    # Designated owner: mutation here is sanctioned.
    ident = _TOKEN_ID_CACHE.get(token)
    if ident is None:
        ident = len(_TOKEN_ID_CACHE)
        _TOKEN_ID_CACHE[token] = ident
    return ident


def rogue_insert(token):
    _TOKEN_ID_CACHE[token] = -1  # expect[PGL901]


def rogue_clear():
    _TOKEN_ID_CACHE.clear()  # expect[PGL901]


def reset_cache():  # expect[PGL901]
    global _TOKEN_ID_CACHE
    _TOKEN_ID_CACHE = {}


class Interner:
    def __init__(self):
        self._lock = threading.RLock()
        self._string_ids = {}
        self._strings = []

    def intern_string(self, text):
        with self._lock:
            ident = self._string_ids.get(text)
            if ident is None:
                ident = len(self._strings)
                self._strings.append(text)
                self._string_ids[text] = ident
            return ident

    def rogue_intern(self, text):
        self._strings.append(text)  # expect[PGL901]
        self._string_ids[text] = -1  # expect[PGL901]
        return len(self._strings)

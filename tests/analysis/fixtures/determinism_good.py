"""Fixture: PGL101/PGL102 negatives -- sanctioned patterns, zero findings."""

import numpy as np


def sorted_freeze(tokens):
    distinct = set(tokens)
    return sorted(distinct)


def order_insensitive_reductions(values: set):
    return sum(values), min(values), max(values), len(values), any(values)


def sorted_join(labels: set) -> str:
    return ",".join(sorted(labels))


def set_to_set(values):
    bag = {value for value in values}
    return frozenset(value * 2 for value in bag)


def sorted_comprehension(labels: set):
    return [label.upper() for label in sorted(labels)]


def dict_iteration_is_insertion_ordered(mapping):
    return list(mapping), [key for key in mapping]


def membership_only(values: set, needle):
    return needle in values


def commutative_accumulation(seen: set):
    total = 0
    for item in seen:
        total += item
    return total


def set_update_loop(seen: set, extra):
    collected = set()
    for item in seen:
        collected.add(item)
    collected.update(extra)
    return collected


def seeded_generator(seed: int):
    return np.random.default_rng(seed)


def seeded_draws(seed: int, n: int):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10, size=n)


def reassigned_name_is_not_a_set(tokens):
    items = set(tokens)
    items = sorted(items)
    return list(items)

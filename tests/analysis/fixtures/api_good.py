"""Fixture: PGL501/PGL502 negatives."""


def tally(values, bucket=None):
    if bucket is None:
        bucket = []
    bucket.extend(values)
    return bucket


def frozen_default(keys=frozenset(), pair=()):
    return keys, pair


class CountAccumulator:
    def __init__(self):
        self.counts = {}

    def observe(self, key):
        self.counts[key] = self.counts.get(key, 0) + 1

    def observe_column(self, key, values):
        self.counts[key] = self.counts.get(key, 0) + len(values)

    def merge_from(self, other):
        for key, value in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + value

    def copy(self):
        clone = CountAccumulator()
        clone.counts = dict(self.counts)
        return clone


class PlainContainer:
    """copy(name) is fine on classes outside the merge lattice."""

    def __init__(self, name):
        self.name = name

    def copy(self, name):
        return PlainContainer(name)

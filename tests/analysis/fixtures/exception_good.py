"""Fixture: PGL801/PGL802 negatives -- owned handles, safe mutations."""

import io
from concurrent.futures import ProcessPoolExecutor


def read_with(path):
    with open(path, "rb") as handle:
        return handle.read()


def read_try_finally(path):
    handle = open(path, "rb")
    try:
        return handle.read()
    finally:
        handle.close()


def open_for_caller(path):
    # Caller owns the handle.
    return open(path, "rb")


def wrap_stream(path):
    # Ownership transfers into the wrapper with the value.
    return io.TextIOWrapper(open(path, "rb"))


def pool_with(jobs):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return [future.result() for future in map(pool.submit, jobs)]


def pool_try_finally(jobs):
    pool = ProcessPoolExecutor(max_workers=2)
    try:
        return [pool.submit(job).result() for job in jobs]
    finally:
        pool.shutdown()


class Holder:
    def acquire(self, path):
        # Owned by the object: released in close() below.
        self._handle = open(path, "ab")

    def close(self):
        self._handle.close()


class ValidationError(Exception):
    pass


def _validate(change):
    if change is None:
        raise ValidationError("empty change")


class SafeSession:
    def __init__(self):
        self._sequence = 0
        self._entries = {}

    def apply(self, key, change):
        self._entries[key] = change
        try:
            _validate(change)
        except ValidationError:
            del self._entries[key]
            raise
        self._sequence += 1
        return self._sequence


class ReorderedSession:
    def __init__(self):
        self._sequence = 0
        self._entries = {}

    def apply(self, key, change):
        # Validation happens before the first write: no torn window.
        _validate(change)
        self._entries[key] = change
        self._sequence += 1
        return self._sequence


class CounterState:
    def __init__(self):
        self._count = 0

    def bump(self, flag):
        # Re-mutating the *same* field is idempotent-ish, not a tear.
        self._count += 1
        if flag:
            raise ValidationError("bad flag")
        self._count += 1

"""Fixture: PGL601 positives -- bare pickled artifact writes."""

import pickle


def save_state(path, payload):
    with open(path, "wb") as handle:  # expect[PGL601]
        pickle.dump(payload, handle)


def save_via_write_bytes(path, payload):
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    path.write_bytes(blob)  # expect[PGL601]


def save_dynamic_mode(path, payload, mode):
    with open(path, mode) as handle:  # expect[PGL601]
        pickle.dump(payload, handle)


class Store:
    def flush(self, path, payload):
        blob = pickle.dumps(payload)
        with path.open("wb") as handle:  # expect[PGL601]
            handle.write(blob)

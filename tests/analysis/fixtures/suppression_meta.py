"""Fixture: suppression-hygiene meta diagnostics (PGL001/PGL002/PGL003)."""


def missing_justification(bucket=[]):  # repro-lint: ignore[PGL501]
    return bucket


def unknown_rule(bucket=[]):  # repro-lint: ignore[PGL777] -- no such rule
    return bucket


def unused(bucket=None):  # repro-lint: ignore[PGL501] -- nothing fires here
    return bucket


def docstring_examples_are_inert():
    """Suppression text in strings parses as nothing.

    For example ``# repro-lint: ignore[PGL501] -- not a real comment``.
    """
    return None

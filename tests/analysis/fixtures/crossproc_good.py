"""Fixture: PGL401 negatives -- module-level workers and non-pool receivers."""

from concurrent.futures import ProcessPoolExecutor


def _worker_init():
    pass


def _worker_apply(part):
    return part


def dispatch(parts):
    with ProcessPoolExecutor(initializer=_worker_init) as pool:
        return [pool.submit(_worker_apply, part) for part in parts]


def mapped(pool, parts):
    return list(pool.map(_worker_apply, parts))


def non_pool_receiver(runner, items):
    # Receiver gives no pool/executor hint: not a pickle boundary.
    return runner.submit(lambda: items)

"""Fixture: PGL301/PGL302 positives inside hot-path-named functions."""


def ingest_columnar(batch, union):
    nodes, edges = batch.to_elements()  # expect[PGL301]
    union.merge_in(batch.to_property_graph("change"))  # expect[PGL301]
    return nodes, edges


def build_columnar(rows, Node):
    return [Node(row) for row in rows]  # expect[PGL301]


def record_into(block, summaries):
    for value in block.columns["name"]:  # expect[PGL302]
        summaries.observe("name", value)
    doubled = [value * 2 for value in block.columns["age"]]  # expect[PGL302]
    return doubled


def columnar_changesets(block):
    return {row for row in block.columns["id"].take(block.rows)}  # expect[PGL302]

"""Fixture: PGL803 positives -- leaked or never-unlinked shm handles.

No ``.unlink()`` call exists anywhere in this module, so every
``create=True`` acquisition additionally fires the module-level
unlink-obligation diagnostic.
"""

from multiprocessing import shared_memory
from multiprocessing.shared_memory import SharedMemory


def leak_plain(name):
    block = SharedMemory(name=name)  # expect[PGL803]
    data = bytes(block.buf[:8])
    return data


def close_on_happy_path_only(name):
    block = shared_memory.SharedMemory(name=name)  # expect[PGL803]
    data = bytes(block.buf[:8])
    block.close()
    return data


def create_without_unlink(nbytes):
    # Closed in a finally, so ownership is fine -- but the module has no
    # unlink path at all, so the segment outlives the process.
    block = SharedMemory(create=True, size=nbytes)  # expect[PGL803]
    try:
        return bytes(block.buf[:nbytes])
    finally:
        block.close()


class Holder:
    def acquire(self, name):
        # No *.close()/unlink for this attribute anywhere in the module.
        self._block = SharedMemory(name=name)  # expect[PGL803]

"""Fixture: PGL301/PGL302 negatives.

Hot functions using the vectorised API stay silent, and element-wise
conversion outside the hot call graph is legitimate.
"""


def record_into(block, summaries, group_rows):
    taken = block.columns["name"].take(group_rows)
    summaries.observe_column("name", taken)
    return len(taken)


def ingest_columnar(batch, state):
    state.sequence += 1
    return batch.node_count


def to_union_graph(batch):
    # Not a hot-path name: element-wise conversion is this function's job.
    nodes, edges = batch.to_elements()
    return batch.to_property_graph("union")


def per_row_outside_hot_path(block):
    return [value for value in block.columns["age"]]

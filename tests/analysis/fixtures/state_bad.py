"""Fixture: PGL201 positive -- a state class with an unthreaded field.

``witnesses`` is assigned in ``__init__`` but neither merged nor
encoded: exactly the PR-5 bug class (checkpoint restores silently drop
it).  The unit test registers a contract with a ``merge`` and an
``encode`` target over this module, so the field line carries one
marker per missing target.
"""


class ShardState:
    def __init__(self):
        self.counts = {}
        self.total = 0
        self.witnesses = []  # expect[PGL201,PGL201]

    def merge_from(self, other):
        for key, value in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + value
        self.total += other.total

    def encode(self):
        return {"counts": dict(self.counts), "total": self.total}

"""Fixture: PGL401 positives -- unpicklable callables meet process pools."""

from concurrent.futures import ProcessPoolExecutor


class Dispatcher:
    def dispatch(self, parts):
        with ProcessPoolExecutor(initializer=lambda: None) as pool:  # expect[PGL401]
            futures = [pool.submit(lambda p: p, part) for part in parts]  # expect[PGL401]
        return futures

    def bound_dispatch(self, pool, parts):
        return list(pool.map(self._apply, parts))  # expect[PGL401]

    def _apply(self, part):
        return part


def closure_dispatch(executor, parts):
    def nested(part):
        return part

    return executor.submit(nested, parts[0])  # expect[PGL401]

"""Fixture: a justified suppression silences its diagnostic cleanly."""


def tally(values, bucket=[]):  # repro-lint: ignore[PGL501] -- fixture: exercising the suppression path
    bucket.extend(values)
    return bucket


def stacked(
    # repro-lint: ignore[PGL501] -- fixture: comment-above form applies to the next code line
    bucket=[],
):
    return bucket

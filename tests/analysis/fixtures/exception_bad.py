"""Fixture: PGL801/PGL802 positives -- leaks and torn mutations."""

from concurrent.futures import ProcessPoolExecutor


def leak_plain(path):
    handle = open(path, "rb")  # expect[PGL801]
    data = handle.read()
    return data


def close_on_happy_path_only(path):
    handle = open(path)  # expect[PGL801]
    data = handle.read()
    handle.close()
    return data


def chained_read(path):
    return open(path, "rb").read()  # expect[PGL801]


def leak_pool(jobs):
    pool = ProcessPoolExecutor(max_workers=2)  # expect[PGL801]
    return [pool.submit(job) for job in jobs]


class Holder:
    def acquire(self, path):
        # No *.close() for this attribute anywhere in the module.
        self._handle = open(path, "ab")  # expect[PGL801]


class ValidationError(Exception):
    pass


def _validate(change):
    if change is None:
        raise ValidationError("empty change")


class LedgerSession:
    def __init__(self):
        self._sequence = 0
        self._entries = {}

    def apply(self, key, change):
        self._entries[key] = change
        _validate(change)
        self._sequence += 1  # expect[PGL802]
        return self._sequence


class BatchState:
    def __init__(self):
        self._epoch = 0
        self._entries = {}

    def rotate(self, flag):
        self._epoch += 1
        if flag:
            raise ValidationError("bad flag")
        self._entries = {}  # expect[PGL802]

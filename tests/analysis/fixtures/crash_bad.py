"""Fixture: PGL701/PGL702/PGL703 positives -- broken crash protocols."""

import os
import pickle


class WriteAheadLog:
    def append(self, kind, payload):
        return 1

    def rollback_last(self):
        pass


class SchemaSession:
    def __init__(self):
        self._sequence = 0

    def apply(self, change_set):
        self._sequence += 1
        return change_set


class DurableSchemaSession(SchemaSession):
    def __init__(self, wal):
        super().__init__()
        self._wal = wal
        self._replaying = False

    def apply(self, change_set):
        # Applies first, logs second: a crash between the two loses an
        # acknowledged change-set.
        result = super().apply(change_set)  # expect[PGL701]
        self._wal.append("change", change_set)
        return result


def _logged_after(session, change_set, run):
    # Helper runs the wrapped apply *before* the WAL append.
    outcome = run()
    session._wal.append("change", change_set)
    return outcome


class DurableShardedSchemaSession(SchemaSession):
    def __init__(self, wal):
        super().__init__()
        self._wal = wal
        self._replaying = False

    def apply(self, change_set):
        if self._replaying:
            return super().apply(change_set)
        return _logged_after(
            self,
            change_set,
            lambda: super(DurableShardedSchemaSession, self).apply(  # expect[PGL701]
                change_set
            ),
        )


def _spill(path, blob):
    with open(path, "wb") as handle:
        handle.write(blob)


def checkpoint(path, payload):
    blob = pickle.dumps(payload)
    _spill(path, blob)  # expect[PGL702]


def _freeze(payload):
    return pickle.dumps(payload)


def export(path, payload):
    blob = _freeze(payload)  # expect[PGL702]
    path.write_bytes(blob)


def publish_unsynced(path, target):
    # No file fsync, no directory fsync.
    os.replace(path, target)  # expect[PGL703]


def swap_without_dirsync(handle, path, target):
    os.fsync(handle.fileno())
    os.replace(path, target)  # expect[PGL703]


def rotate(path):
    path.rename(path.with_suffix(".old"))  # expect[PGL703]

"""Fixture: PGL701/PGL702/PGL703 negatives -- protocols done right."""

import os
import pickle


class WriteAheadLog:
    def append(self, kind, payload):
        return 1

    def rollback_last(self):
        pass


class SchemaSession:
    def __init__(self):
        self._sequence = 0

    def apply(self, change_set):
        self._sequence += 1
        return change_set


def _logged(session, change_set, run):
    # The real protocol: log first, run second, roll back on rejection.
    session._wal.append("change", change_set)
    try:
        return run()
    except Exception:
        session._wal.rollback_last()
        raise


class DurableSchemaSession(SchemaSession):
    def __init__(self, wal):
        super().__init__()
        self._wal = wal
        self._replaying = False

    def apply(self, change_set):
        if self._replaying:
            # Replay re-applies records already in the log: the guard
            # makes the direct super() call sanctioned.
            return super().apply(change_set)
        return _logged(
            self,
            change_set,
            lambda: super(DurableSchemaSession, self).apply(change_set),
        )


def _fsync_dir(directory):
    descriptor = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(descriptor)
    finally:
        os.close(descriptor)


def atomic_write_bytes(path, blob):
    temp = path.with_suffix(".tmp")
    with open(temp, "wb") as handle:
        handle.write(blob)
        os.fsync(handle.fileno())
    os.replace(temp, path)
    _fsync_dir(path.parent)


def save(path, payload):
    # Pickling is fine when the bytes flow through the blessed helper.
    atomic_write_bytes(path, pickle.dumps(payload))


def _flush(handle):
    os.fsync(handle.fileno())


def publish_via_helper(handle, path, target):
    # The file fsync may live in a helper: linearization inlines it.
    _flush(handle)
    os.replace(path, target)
    _fsync_dir(target.parent)

"""Fixture: PGL501/PGL502 positives."""


def tally(values, bucket=[]):  # expect[PGL501]
    bucket.extend(values)
    return bucket


def keyed(
    mapping={},  # expect[PGL501]
    *,
    tags=set(),  # expect[PGL501]
):
    return mapping, tags


class CountAccumulator:  # expect[PGL502]
    """Bulk observe without an element-wise oracle, plus drifted merge."""

    def __init__(self):
        self.counts = {}

    def observe_column(self, key, values):
        self.counts[key] = self.counts.get(key, 0) + len(values)

    def merge_from(self, other, theta=0.5):  # expect[PGL502]
        for key, value in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + value

    def copy(self, deep):  # expect[PGL502]
        clone = CountAccumulator()
        clone.counts = dict(self.counts)
        return clone

"""PGL101/PGL102 fire on the bad fixture and stay silent on the good one."""

from repro.analysis.rules.determinism import (
    NondeterministicSourceRule,
    OrderedSetConsumptionRule,
)

from tests.analysis.conftest import assert_fixture

RULES = [
    OrderedSetConsumptionRule(scope=()),
    NondeterministicSourceRule(scope=(), exclude=()),
]


def test_fires_on_violations():
    assert_fixture(RULES, "determinism_bad.py")


def test_silent_on_sanctioned_patterns():
    assert_fixture(RULES, "determinism_good.py")


def test_scoping_excludes_bench_modules(tmp_path):
    from repro.analysis.framework import Analyzer

    bench = tmp_path / "src" / "repro" / "bench" / "timing.py"
    bench.parent.mkdir(parents=True)
    bench.write_text("import time\n\ndef t():\n    return time.time()\n")
    result = Analyzer(
        [NondeterministicSourceRule()], check_suppressions=False
    ).run([bench])
    assert result.diagnostics == []

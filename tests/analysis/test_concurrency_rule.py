"""PGL901 fires on unguarded shared-state mutation only."""

from repro.analysis.rules.concurrency import SharedStateMutationRule

from tests.analysis.conftest import assert_fixture

RULES = [SharedStateMutationRule(scope=())]


def test_fires_on_unguarded_mutation():
    assert_fixture(RULES, "concurrency_bad.py")


def test_silent_on_owner_and_lock_discipline():
    assert_fixture(RULES, "concurrency_good.py")

"""PGL601 fires on bare pickled writes only."""

from repro.analysis.rules.durable_io import DurableArtifactWriteRule

from tests.analysis.conftest import assert_fixture

RULES = [DurableArtifactWriteRule(scope=())]


def test_fires_on_bare_pickled_writes():
    assert_fixture(RULES, "durable_bad.py")


def test_silent_on_blessed_helper_and_plain_io():
    assert_fixture(RULES, "durable_good.py")

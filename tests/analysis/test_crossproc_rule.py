"""PGL401 fires on unpicklable pool submissions only."""

from repro.analysis.rules.crossproc import ProcessPoolSubmissionRule

from tests.analysis.conftest import assert_fixture

RULES = [ProcessPoolSubmissionRule(scope=())]


def test_fires_on_unpicklable_submissions():
    assert_fixture(RULES, "crossproc_bad.py")


def test_silent_on_module_level_workers():
    assert_fixture(RULES, "crossproc_good.py")

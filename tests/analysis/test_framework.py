"""Framework behaviour: suppressions, meta-rules, file collection."""

from repro.analysis.framework import Analyzer, Diagnostic, Rule
from repro.analysis.rules.api_hygiene import MutableDefaultRule

from tests.analysis.conftest import FIXTURES


def _run(path, *, check_suppressions=True):
    return Analyzer(
        [MutableDefaultRule()], check_suppressions=check_suppressions
    ).run([path])


def test_justified_suppressions_silence_both_forms():
    result = _run(FIXTURES / "suppression_ok.py")
    assert result.diagnostics == [], [d.render() for d in result.diagnostics]
    assert result.suppressions_used == 2  # same-line and comment-above


def test_meta_rules_keep_suppressions_honest():
    result = _run(FIXTURES / "suppression_meta.py")
    by_rule: dict[str, list[Diagnostic]] = {}
    for diagnostic in result.diagnostics:
        by_rule.setdefault(diagnostic.rule_id, []).append(diagnostic)
    # Missing justification: the PGL501 is still suppressed, PGL001 fires.
    assert len(by_rule["PGL001"]) == 1
    # Unknown rule id: PGL002 fires and the PGL501 it failed to name leaks.
    assert len(by_rule["PGL002"]) == 1
    assert len(by_rule["PGL501"]) == 1
    # Suppression matching nothing: PGL003.
    assert len(by_rule["PGL003"]) == 1
    assert set(by_rule) == {"PGL001", "PGL002", "PGL003", "PGL501"}


def test_docstring_suppressions_and_meta_opt_out():
    # With meta checks off, the fixture's only finding is the leaked PGL501;
    # the suppression text inside the docstring stays inert either way.
    result = _run(FIXTURES / "suppression_meta.py", check_suppressions=False)
    assert [d.rule_id for d in result.diagnostics] == ["PGL501"]


def test_directory_walk_skips_fixtures_but_explicit_files_scan():
    walked = Analyzer.collect_files([FIXTURES.parent.parent])  # tests/
    assert not any("fixtures" in str(path) for path in walked)
    explicit = Analyzer.collect_files([FIXTURES / "api_bad.py"])
    assert len(explicit) == 1


def test_parse_errors_are_reported_not_raised(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def incomplete(:\n")
    result = _run(broken)
    assert not result.ok
    assert result.parse_errors[0].rule_id == "PGL999"


def test_rule_scoping():
    rule = Rule(scope=("src/repro/core/",), exclude=("src/repro/core/bench",))
    assert rule.applies("src/repro/core/state.py")
    assert not rule.applies("src/repro/lsh/minhash.py")
    assert not rule.applies("src/repro/core/bench_helpers.py")
    assert Rule().applies("anything.py")


def test_unknown_suppression_id_flagged_even_without_diagnostics(tmp_path):
    target = tmp_path / "module.py"
    target.write_text(
        "x = 1  # repro-lint: ignore[NOPE123] -- justified but bogus\n"
    )
    result = _run(target)
    assert [d.rule_id for d in result.diagnostics] == ["PGL002"]

"""PGL301/PGL302 fire inside hot-path functions only."""

from repro.analysis.rules.hotpath import (
    ColumnLoopRule,
    ElementMaterialisationRule,
    is_hot_function,
)

from tests.analysis.conftest import assert_fixture

RULES = [ElementMaterialisationRule(scope=()), ColumnLoopRule(scope=())]


def test_fires_on_hot_path_violations():
    assert_fixture(RULES, "hotpath_bad.py")


def test_silent_on_vectorised_and_cold_code():
    assert_fixture(RULES, "hotpath_good.py")


def test_hot_function_name_detection():
    assert is_hot_function("SchemaSession._ingest_columnar")
    assert is_hot_function("KeyAccumulator.record_into")
    assert is_hot_function("columnar_changesets_from_rows")
    assert is_hot_function("partition_columnar")
    assert not is_hot_function("SchemaSession.apply")
    assert not is_hot_function("to_property_graph")

"""Baseline files: round trip, consuming match, stale detection."""

import json

import pytest

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.framework import Diagnostic


def _diag(path="src/a.py", rule_id="PGL701", message="m", line=5):
    return Diagnostic(path=path, line=line, rule_id=rule_id, message=message)


def test_round_trip(tmp_path):
    diagnostics = [_diag(), _diag(rule_id="PGL901", message="other")]
    target = tmp_path / "baseline.json"
    write_baseline(target, diagnostics)
    entries = load_baseline(target)
    match = apply_baseline(diagnostics, entries)
    assert match.fresh == []
    assert match.matched == 2
    assert match.stale == []


def test_match_ignores_line_numbers(tmp_path):
    target = tmp_path / "baseline.json"
    write_baseline(target, [_diag(line=5)])
    # The same finding drifted 30 lines down -- still baselined.
    match = apply_baseline([_diag(line=35)], load_baseline(target))
    assert match.fresh == []
    assert match.matched == 1


def test_match_is_consuming():
    entries = [{"path": "src/a.py", "rule_id": "PGL701", "message": "m"}]
    duplicated = [_diag(line=5), _diag(line=9)]
    match = apply_baseline(duplicated, entries)
    # One entry absorbs one finding; the second identical finding gates.
    assert match.matched == 1
    assert [d.line for d in match.fresh] == [9]


def test_stale_entries_reported():
    entries = [
        {"path": "src/a.py", "rule_id": "PGL701", "message": "m"},
        {"path": "src/gone.py", "rule_id": "PGL802", "message": "fixed"},
    ]
    match = apply_baseline([_diag()], entries)
    assert match.matched == 1
    assert match.fresh == []
    assert match.stale == [entries[1]]


def test_fresh_findings_pass_through():
    match = apply_baseline([_diag()], [])
    assert match.matched == 0
    assert [d.rule_id for d in match.fresh] == ["PGL701"]


@pytest.mark.parametrize(
    "payload",
    [
        "not json at all {",
        json.dumps({"version": 2, "entries": []}),
        json.dumps({"version": 1}),
        json.dumps({"version": 1, "entries": [{"path": "x"}]}),
        json.dumps({"version": 1, "entries": ["not-a-dict"]}),
    ],
)
def test_malformed_baseline_rejected(tmp_path, payload):
    target = tmp_path / "baseline.json"
    target.write_text(payload, encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(target)


def test_missing_baseline_rejected(tmp_path):
    with pytest.raises(BaselineError):
        load_baseline(tmp_path / "absent.json")


def test_written_baseline_is_sorted_and_versioned(tmp_path):
    target = tmp_path / "baseline.json"
    write_baseline(
        target,
        [_diag(path="src/z.py"), _diag(path="src/a.py")],
    )
    payload = json.loads(target.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert [e["path"] for e in payload["entries"]] == ["src/a.py", "src/z.py"]

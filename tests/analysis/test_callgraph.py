"""Call-graph resolution, reachability, and linearization queries."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.callgraph import (
    CallGraph,
    first_unpreceded,
    project_callgraph,
)
from repro.analysis.framework import ModuleContext, Project

_SOURCE = '''
class Base:
    def apply(self, item):
        self._count += 1
        return item

    def helper(self):
        raise ValueError("boom")


class Derived(Base):
    def apply(self, item):
        logged(self, lambda: super(Derived, self).apply(item))

    def run(self):
        return self.helper()


def logged(target, run):
    target.mark("logged")
    return run()


def entry():
    return logged(None, lambda: None)


def outer():
    def inner():
        return 1
    return inner()
'''


def _project() -> Project:
    tree = ast.parse(_SOURCE)
    module = ModuleContext(Path("demo.py"), "demo.py", _SOURCE, tree)
    return Project([module])


def test_resolution_and_mro():
    graph = CallGraph(_project())
    derived_apply = graph.function("demo.py", "Derived.apply")
    assert derived_apply is not None
    assert graph.is_subclass_of("Derived", {"Base"})
    # self.helper() resolves through the MRO to Base.helper.
    run = graph.function("demo.py", "Derived.run")
    callees = {info.qualname for info in graph.callees(run)}
    assert callees == {"Base.helper"}
    # A nested function is not misread as a method.
    inner = graph.function("demo.py", "outer.inner")
    assert inner is not None and inner.class_qualname is None


def test_reachability_and_raises():
    graph = CallGraph(_project())
    run = graph.function("demo.py", "Derived.run")
    assert {info.qualname for info in graph.reachable(run)} == {"Base.helper"}
    assert graph.raises_within(run)
    base_apply = graph.function("demo.py", "Base.apply")
    assert not graph.raises_within(base_apply)


def test_lambda_argument_linearizes_at_invocation_point():
    graph = CallGraph(_project())
    derived_apply = graph.function("demo.py", "Derived.apply")

    def classify(node: ast.AST, owner) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "mark":
                return "mark"
            if node.func.attr == "apply" and isinstance(
                node.func.value, ast.Call
            ):
                return "super-apply"
        return None

    kinds = [e.kind for e in graph.linearize(derived_apply, classify)]
    # logged() marks first, *then* invokes the lambda: the super().apply
    # event must land after the mark event, not at the passing site.
    assert kinds == ["mark", "super-apply"]


def test_first_unpreceded_orderings():
    graph = CallGraph(_project())
    derived_apply = graph.function("demo.py", "Derived.apply")

    def classify(node: ast.AST, owner) -> str | None:
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            return {"mark": "a", "apply": "b"}.get(node.func.attr)
        return None

    events = graph.linearize(derived_apply, classify)
    assert first_unpreceded(events, "b", "a") is None
    violation = first_unpreceded(events, "a", "b")
    assert violation is not None and violation.kind == "a"


def test_project_callgraph_is_cached():
    project = _project()
    assert project_callgraph(project) is project_callgraph(project)

"""Unit tests for shared utilities."""

import time

import pytest

from repro.util import Timer, chunked, derive_seed, jaccard


class TestJaccard:
    def test_basic(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_identical(self):
        assert jaccard({"a"}, {"a"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_empty_sets_count_as_identical(self):
        # Algorithm 2 needs property-less clusters to merge.
        assert jaccard(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard(set(), {"a"}) == 0.0

    def test_symmetry(self):
        left, right = {"a", "b", "c"}, {"b", "d"}
        assert jaccard(left, right) == jaccard(right, left)

    def test_works_with_frozensets(self):
        assert jaccard(frozenset({"a"}), frozenset({"a", "b"})) == 0.5


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "x", 2) == derive_seed(1, "x", 2)

    def test_sensitive_to_components(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_fits_in_63_bits(self):
        for seed in (0, 1, 10**12):
            assert 0 <= derive_seed(seed, "component") < (1 << 63)


class TestTimer:
    def test_measure_accumulates(self):
        timer = Timer()
        with timer.measure("a"):
            time.sleep(0.01)
        with timer.measure("a"):
            time.sleep(0.01)
        assert timer.lap("a") >= 0.02

    def test_multiple_laps_and_total(self):
        timer = Timer()
        with timer.measure("x"):
            pass
        with timer.measure("y"):
            pass
        assert timer.total == pytest.approx(
            timer.lap("x") + timer.lap("y")
        )

    def test_unknown_lap_is_zero(self):
        assert Timer().lap("nothing") == 0.0

    def test_exception_still_records(self):
        timer = Timer()
        with pytest.raises(ValueError):
            with timer.measure("boom"):
                raise ValueError("x")
        assert timer.lap("boom") > 0.0


class TestChunked:
    def test_even_split(self):
        assert list(chunked(range(6), 2)) == [[0, 1], [2, 3], [4, 5]]

    def test_remainder(self):
        assert list(chunked(range(5), 2)) == [[0, 1], [2, 3], [4]]

    def test_empty(self):
        assert list(chunked([], 3)) == []

    def test_works_with_generators(self):
        assert list(chunked((i for i in range(3)), 5)) == [[0, 1, 2]]

"""Unit tests for schema merging (section 4.6)."""

from repro.schema.cardinality import CardinalityBounds
from repro.schema.merge import merge_into, merge_schemas
from repro.schema.model import EdgeType, NodeType, SchemaGraph, subsumes


def schema_with(node_specs, edge_specs=()):
    """Helper: build a schema from (id, labels, keys) node tuples and
    (id, labels, keys, src_tokens, tgt_tokens) edge tuples."""
    schema = SchemaGraph()
    for type_id, labels, keys in node_specs:
        node_type = NodeType(type_id, labels, abstract=not labels)
        for key in keys:
            node_type.ensure_property(key)
        schema.add_node_type(node_type)
    for type_id, labels, keys, sources, targets in edge_specs:
        edge_type = EdgeType(type_id, labels, abstract=not labels)
        for key in keys:
            edge_type.ensure_property(key)
        edge_type.source_tokens = set(sources)
        edge_type.target_tokens = set(targets)
        schema.add_edge_type(edge_type)
    return schema


class TestLabeledNodeMerge:
    def test_same_token_types_merge(self):
        left = schema_with([("n0", {"Person"}, {"name"})])
        right = schema_with([("x0", {"Person"}, {"age"})])
        merged = merge_schemas(left, right)
        assert merged.node_type_count == 1
        assert merged.node_type_by_token("Person").property_keys == frozenset(
            {"name", "age"}
        )

    def test_distinct_tokens_stay_separate(self):
        left = schema_with([("n0", {"Person"}, {"name"})])
        right = schema_with([("x0", {"Org"}, {"name"})])
        merged = merge_schemas(left, right)
        assert merged.node_type_count == 2

    def test_multilabel_token_must_match_exactly(self):
        left = schema_with([("n0", {"Person", "Student"}, {"name"})])
        right = schema_with([("x0", {"Person"}, {"name"})])
        merged = merge_schemas(left, right)
        assert merged.node_type_count == 2

    def test_id_clash_resolved(self):
        left = schema_with([("n0", {"A"}, set())])
        right = schema_with([("n0", {"B"}, set())])
        merged = merge_schemas(left, right)
        assert merged.node_type_count == 2
        ids = [t.type_id for t in merged.node_types()]
        assert len(set(ids)) == 2


class TestUnlabeledNodeMerge:
    def test_merges_into_jaccard_similar_labeled_type(self):
        left = schema_with([("n0", {"Person"}, {"name", "age", "city"})])
        right = schema_with([("x0", set(), {"name", "age", "city"})])
        merged = merge_schemas(left, right, theta=0.9)
        assert merged.node_type_count == 1

    def test_below_theta_stays_abstract(self):
        left = schema_with([("n0", {"Person"}, {"name", "age", "city"})])
        right = schema_with([("x0", set(), {"name"})])
        merged = merge_schemas(left, right, theta=0.9)
        assert merged.node_type_count == 2
        assert len(merged.abstract_node_types()) == 1

    def test_unlabeled_pair_merges_with_each_other(self):
        left = schema_with([("n0", set(), {"a", "b"})])
        right = schema_with([("x0", set(), {"a", "b"})])
        merged = merge_schemas(left, right)
        assert merged.node_type_count == 1
        assert merged.abstract_node_types()[0].property_keys == frozenset(
            {"a", "b"}
        )

    def test_prefers_labeled_over_unlabeled(self):
        base = schema_with(
            [("n0", {"Person"}, {"a", "b"}), ("n1", set(), {"a", "b"})]
        )
        incoming = schema_with([("x0", set(), {"a", "b"})])
        merged = merge_schemas(base, incoming)
        assert merged.node_type_by_token("Person").property_keys == frozenset(
            {"a", "b"}
        )
        # The incoming unlabeled type went to the labeled candidate.
        assert merged.node_type_count == 2


class TestEdgeMerge:
    def test_same_label_compatible_endpoints_merge(self):
        left = schema_with(
            [], [("e0", {"KNOWS"}, {"since"}, {"Person"}, {"Person"})]
        )
        right = schema_with(
            [], [("y0", {"KNOWS"}, set(), {"Person"}, {"Person"})]
        )
        merged = merge_schemas(left, right)
        assert merged.edge_type_count == 1
        edge_type = next(merged.edge_types())
        assert edge_type.property_keys == frozenset({"since"})

    def test_same_label_disjoint_endpoints_stay_separate(self):
        left = schema_with(
            [], [("e0", {"ConnectsTo"}, set(), {"Neuron"}, {"Neuron"})]
        )
        right = schema_with(
            [], [("y0", {"ConnectsTo"}, set(), {"Segment"}, {"Segment"})]
        )
        merged = merge_schemas(left, right)
        assert merged.edge_type_count == 2

    def test_cardinality_bounds_union(self):
        left = schema_with([], [("e0", {"R"}, set(), {"A"}, {"B"})])
        next(left.edge_types()).cardinality_bounds = CardinalityBounds(1, 1)
        right = schema_with([], [("y0", {"R"}, set(), {"A"}, {"B"})])
        next(right.edge_types()).cardinality_bounds = CardinalityBounds(1, 7)
        merged = merge_schemas(left, right)
        assert next(merged.edge_types()).cardinality_bounds == CardinalityBounds(1, 7)


class TestMergeProperties:
    def test_merge_generalises_both_inputs(self):
        left = schema_with(
            [("n0", {"A"}, {"x"})], [("e0", {"R"}, {"p"}, {"A"}, {"A"})]
        )
        right = schema_with(
            [("n0", {"A"}, {"y"}), ("n1", {"B"}, set())],
            [("e0", {"R"}, {"q"}, {"A"}, {"B"})],
        )
        merged = merge_schemas(left, right)
        assert subsumes(merged, left)
        assert subsumes(merged, right)

    def test_merge_into_mutates_target(self):
        target = schema_with([("n0", {"A"}, {"x"})])
        incoming = schema_with([("y0", {"B"}, {"z"})])
        result = merge_into(target, incoming)
        assert result is target
        assert target.node_type_count == 2

    def test_merge_idempotent(self):
        schema = schema_with(
            [("n0", {"A"}, {"x"})], [("e0", {"R"}, set(), {"A"}, {"A"})]
        )
        once = merge_schemas(schema, schema)
        assert once.node_type_count == schema.node_type_count
        assert once.edge_type_count == schema.edge_type_count


class TestDeterministicMerge:
    def test_merge_order_independent_for_labeled_types(self):
        """Folding the same labeled partial schemas in any order yields a
        fingerprint-identical result (the sharded-merge guarantee)."""
        from itertools import permutations

        from repro.schema.merge import canonicalize_schema
        from repro.schema.model import schema_fingerprint

        parts = [
            schema_with(
                [("a0", {"Person"}, {"name"})],
                [("e0", {"R"}, {"p"}, {"Person"}, {"Person"})],
            ),
            schema_with(
                [("b0", {"Person"}, {"age"}), ("b1", {"Org"}, {"url"})],
                [("f0", {"R"}, {"q"}, {"Person"}, {"Person"})],
            ),
            schema_with([("c0", {"Org"}, {"name", "url"})]),
        ]
        fingerprints = set()
        for order in permutations(range(3)):
            target = SchemaGraph("merged")
            for index in order:
                merge_into(target, parts[index])
            canonicalize_schema(target)
            fingerprints.add(schema_fingerprint(target))
        assert len(fingerprints) == 1

    def test_incoming_insertion_order_is_irrelevant(self):
        from repro.schema.model import schema_fingerprint

        forward = schema_with([("n0", {"B"}, {"x"}), ("n1", {"A"}, {"y"})])
        backward = schema_with([("n0", {"A"}, {"y"}), ("n1", {"B"}, {"x"})])
        left = merge_schemas(SchemaGraph("t"), forward)
        right = merge_schemas(SchemaGraph("t"), backward)
        assert schema_fingerprint(left) == schema_fingerprint(right)

    def test_absorbed_property_specs_are_key_sorted(self):
        target = schema_with([("n0", {"A"}, {"zeta", "mid"})])
        incoming = schema_with([("x0", {"A"}, {"alpha"})])
        merge_into(target, incoming)
        node_type = target.node_type_by_token("A")
        assert list(node_type.properties) == sorted(node_type.properties)


class TestCanonicalizeSchema:
    def test_names_are_content_derived_and_ordered(self):
        from repro.schema.merge import canonicalize_schema

        schema = schema_with(
            [("n7", {"Zebra"}, {"z"}), ("n3", {"Ant"}, {"a"}), ("n5", set(), {"q"})],
            [("e9", {"R"}, set(), {"Ant"}, {"Zebra"})],
        )
        canonicalize_schema(schema)
        ids = [t.type_id for t in schema.node_types()]
        # canonical order sorts by token; the abstract type's empty token
        # sorts first
        assert ids[0].startswith("n:abstract:")
        assert ids[1:] == ["n:Ant", "n:Zebra"]
        assert [t.type_id for t in schema.edge_types()] == ["e:R"]

    def test_colliding_stems_get_stable_suffixes(self):
        from repro.schema.merge import canonicalize_schema

        schema = schema_with(
            [],
            [
                ("e0", {"R"}, set(), {"A"}, {"A"}),
                ("e1", {"R"}, set(), {"B"}, {"B"}),
            ],
        )
        canonicalize_schema(schema)
        assert sorted(t.type_id for t in schema.edge_types()) == ["e:R", "e:R#2"]

"""Unit tests for schema diffing (extension)."""

from repro.schema.diff import diff_schemas
from repro.schema.model import EdgeType, NodeType, SchemaGraph


def schema_with_person(keys=("name",), mandatory=(), cardinality=None):
    schema = SchemaGraph()
    person = NodeType("n0", {"Person"})
    for key in keys:
        spec = person.ensure_property(key)
        spec.mandatory = key in mandatory
    schema.add_node_type(person)
    return schema


class TestTypeAdditionRemoval:
    def test_added_node_type(self):
        before = schema_with_person()
        after = before.copy()
        after.add_node_type(NodeType("n1", {"Org"}))
        diff = diff_schemas(before, after)
        assert diff.added_node_types == ["Org"]
        assert not diff.removed_node_types

    def test_removed_node_type(self):
        after = schema_with_person()
        before = after.copy()
        before.add_node_type(NodeType("n1", {"Org"}))
        diff = diff_schemas(before, after)
        assert diff.removed_node_types == ["Org"]

    def test_added_edge_type(self):
        before = schema_with_person()
        after = before.copy()
        knows = EdgeType("e0", {"KNOWS"})
        knows.record_endpoints("Person", "Person")
        after.add_edge_type(knows)
        diff = diff_schemas(before, after)
        assert diff.added_edge_types == ["KNOWS"]

    def test_identical_schemas_empty_diff(self):
        schema = schema_with_person()
        diff = diff_schemas(schema, schema.copy())
        assert diff.is_empty
        assert diff.summary() == "no schema changes"


class TestTypeChanges:
    def test_added_property_detected(self):
        before = schema_with_person(keys=("name",))
        after = schema_with_person(keys=("name", "age"))
        diff = diff_schemas(before, after)
        (change,) = diff.changed_node_types
        assert change.added_properties == frozenset({"age"})

    def test_weakened_constraint_detected(self):
        before = schema_with_person(keys=("name",), mandatory=("name",))
        after = schema_with_person(keys=("name",))
        diff = diff_schemas(before, after)
        (change,) = diff.changed_node_types
        assert change.weakened_to_optional == frozenset({"name"})

    def test_added_label_detected(self):
        before = schema_with_person()
        after = schema_with_person()
        # Same token match is by token; add label via absorb-like mutation
        # on a matched abstract type instead.
        before_abstract = SchemaGraph()
        abstract = NodeType("n0", (), abstract=True)
        abstract.ensure_property("k")
        before_abstract.add_node_type(abstract)
        after_abstract = SchemaGraph()
        promoted = NodeType("n0", {"Found"})
        promoted.ensure_property("k")
        after_abstract.add_node_type(promoted)
        # Abstract matches by property keys; labelled matches by token, so
        # the promoted type appears as an addition plus a removal-free match
        # is not possible -- assert the diff is visible either way.
        diff = diff_schemas(before_abstract, after_abstract)
        assert not diff.is_empty

    def test_cardinality_change_detected(self):
        def edge_schema(cardinality):
            from repro.schema.cardinality import CardinalityBounds

            schema = SchemaGraph()
            edge = EdgeType("e0", {"R"})
            edge.record_endpoints("A", "B")
            edge.cardinality_bounds = cardinality
            edge.cardinality = cardinality.classify()
            schema.add_edge_type(edge)
            return schema

        from repro.schema.cardinality import CardinalityBounds

        before = edge_schema(CardinalityBounds(1, 1))
        after = edge_schema(CardinalityBounds(1, 5))
        diff = diff_schemas(before, after)
        (change,) = diff.changed_edge_types
        assert change.cardinality_before == "0:1"
        assert change.cardinality_after == "N:1"
        assert "cardinality" in diff.summary()

    def test_summary_lists_changes(self):
        before = schema_with_person(keys=("name",))
        after = schema_with_person(keys=("name", "age"))
        after.add_node_type(NodeType("n9", {"Org"}))
        summary = diff_schemas(before, after).summary()
        assert "Org" in summary
        assert "age" in summary

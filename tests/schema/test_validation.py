"""Unit tests for LOOSE/STRICT schema validation."""

import pytest

from repro.graph.model import Edge, Node, PropertyGraph
from repro.schema.datatypes import DataType
from repro.schema.model import EdgeType, NodeType, SchemaGraph
from repro.schema.validation import ValidationMode, validate_graph


@pytest.fixture
def person_schema() -> SchemaGraph:
    schema = SchemaGraph("people")
    person = NodeType("n0", {"Person"})
    for key, data_type, mandatory in (
        ("name", DataType.STRING, True),
        ("age", DataType.INTEGER, False),
    ):
        spec = person.ensure_property(key)
        spec.data_type = data_type
        spec.mandatory = mandatory
    schema.add_node_type(person)
    knows = EdgeType("e0", {"KNOWS"})
    knows.record_endpoints("Person", "Person")
    schema.add_edge_type(knows)
    return schema


def graph_with(*nodes, edges=()):
    graph = PropertyGraph()
    for node in nodes:
        graph.add_node(node)
    for edge in edges:
        graph.add_edge(edge)
    return graph


class TestLooseValidation:
    def test_conforming_graph(self, person_schema):
        graph = graph_with(Node("a", {"Person"}, {"name": "A"}))
        report = validate_graph(graph, person_schema, ValidationMode.LOOSE)
        assert report.valid
        assert report.checked_nodes == 1

    def test_loose_ignores_missing_mandatory(self, person_schema):
        graph = graph_with(Node("a", {"Person"}, {}))
        report = validate_graph(graph, person_schema, ValidationMode.LOOSE)
        assert report.valid

    def test_unknown_property_violates_loose(self, person_schema):
        graph = graph_with(Node("a", {"Person"}, {"salary": 1}))
        report = validate_graph(graph, person_schema, ValidationMode.LOOSE)
        assert not report.valid
        assert report.violations[0].kind == "loose"

    def test_unknown_label_has_no_type(self, person_schema):
        graph = graph_with(Node("a", {"Robot"}, {}))
        report = validate_graph(graph, person_schema, ValidationMode.LOOSE)
        assert not report.valid
        assert report.violations[0].kind == "no-type"

    def test_unlabeled_node_may_match_any_type(self, person_schema):
        graph = graph_with(Node("a", frozenset(), {"name": "X"}))
        report = validate_graph(graph, person_schema, ValidationMode.LOOSE)
        assert report.valid


class TestStrictValidation:
    def test_missing_mandatory_property(self, person_schema):
        graph = graph_with(Node("a", {"Person"}, {"age": 3}))
        report = validate_graph(graph, person_schema, ValidationMode.STRICT)
        assert not report.valid
        assert any("mandatory" in str(v) for v in report.violations)

    def test_incompatible_datatype(self, person_schema):
        graph = graph_with(Node("a", {"Person"}, {"name": "A", "age": "old"}))
        report = validate_graph(graph, person_schema, ValidationMode.STRICT)
        assert not report.valid
        assert any("incompatible" in str(v) for v in report.violations)

    def test_conforming_strict(self, person_schema):
        graph = graph_with(
            Node("a", {"Person"}, {"name": "A", "age": 30}),
            Node("b", {"Person"}, {"name": "B"}),
            edges=(Edge("e1", "a", "b", {"KNOWS"}),),
        )
        report = validate_graph(graph, person_schema, ValidationMode.STRICT)
        assert report.valid
        assert report.checked_edges == 1

    def test_report_str(self, person_schema):
        graph = graph_with(Node("a", {"Person"}, {"name": "A"}))
        report = validate_graph(graph, person_schema, ValidationMode.STRICT)
        assert "VALID" in str(report)

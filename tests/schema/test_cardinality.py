"""Unit tests for cardinality classification (section 4.4, Example 8)."""

import pytest

from repro.schema.cardinality import Cardinality, CardinalityBounds


class TestClassification:
    @pytest.mark.parametrize(
        "max_out,max_in,expected",
        [
            (1, 1, Cardinality.ONE_TO_ONE),
            (0, 0, Cardinality.ONE_TO_ONE),
            (1, 5, Cardinality.MANY_TO_ONE),
            (5, 1, Cardinality.ONE_TO_MANY),
            (3, 7, Cardinality.MANY_TO_MANY),
        ],
    )
    def test_degree_pairs(self, max_out, max_in, expected):
        assert CardinalityBounds(max_out, max_in).classify() is expected

    def test_example8_works_at(self):
        # Each person works at exactly one organisation (max_out = 1);
        # organisations employ many people (max_in > 1) => N:1.
        bounds = CardinalityBounds(max_out=1, max_in=12)
        assert bounds.classify() is Cardinality.MANY_TO_ONE
        assert str(bounds.classify()) == "N:1"

    def test_example8_knows(self):
        bounds = CardinalityBounds(max_out=4, max_in=6)
        assert bounds.classify() is Cardinality.MANY_TO_MANY
        assert str(bounds.classify()) == "M:N"


class TestMerging:
    def test_merge_takes_componentwise_max(self):
        left = CardinalityBounds(1, 4)
        right = CardinalityBounds(3, 2)
        merged = left.merged_with(right)
        assert merged == CardinalityBounds(3, 4)

    def test_merge_is_monotone_in_classification(self):
        # Merging can only widen: 0:1 + N:1 -> N:1.
        narrow = CardinalityBounds(1, 1)
        wide = CardinalityBounds(1, 9)
        assert narrow.merged_with(wide).classify() is Cardinality.MANY_TO_ONE

"""Unit tests for the schema-graph model (Def. 3.2-3.4)."""

import pytest

from repro.errors import SchemaError
from repro.schema.cardinality import CardinalityBounds
from repro.schema.datatypes import DataType
from repro.schema.model import (
    EdgeType,
    NodeType,
    PropertySpec,
    SchemaGraph,
    subsumes,
)


class TestPropertySpec:
    def test_merge_generalises_datatype(self):
        left = PropertySpec("k", DataType.INTEGER, True)
        right = PropertySpec("k", DataType.FLOAT, True)
        merged = left.merged_with(right)
        assert merged.data_type is DataType.FLOAT
        assert merged.mandatory is True

    def test_merge_weakens_mandatory(self):
        left = PropertySpec("k", DataType.STRING, True)
        right = PropertySpec("k", DataType.STRING, False)
        assert left.merged_with(right).mandatory is False

    def test_merge_keeps_known_side(self):
        left = PropertySpec("k")
        right = PropertySpec("k", DataType.DATE, True)
        merged = left.merged_with(right)
        assert merged.data_type is DataType.DATE
        assert merged.mandatory is True

    def test_merge_key_mismatch_raises(self):
        with pytest.raises(SchemaError):
            PropertySpec("a").merged_with(PropertySpec("b"))


class TestNodeType:
    def test_record_instance_tracks_counts(self):
        node_type = NodeType("n0", {"Person"})
        node_type.record_instance("a", {"name", "age"})
        node_type.record_instance("b", {"name"})
        assert node_type.instance_count == 2
        assert node_type.property_counts["name"] == 2
        assert node_type.property_counts["age"] == 1
        assert node_type.property_keys == frozenset({"name", "age"})

    def test_absorb_unions_everything(self):
        left = NodeType("n0", {"Person"})
        left.record_instance("a", {"name"})
        right = NodeType("n1", {"Student"})
        right.record_instance("b", {"grade"})
        left.absorb(right)
        assert left.labels == {"Person", "Student"}
        assert left.property_keys == frozenset({"name", "grade"})
        assert left.instance_ids == {"a", "b"}
        assert left.instance_count == 2

    def test_absorb_labeled_clears_abstract(self):
        abstract = NodeType("n0", (), abstract=True)
        labeled = NodeType("n1", {"X"})
        abstract.absorb(labeled)
        assert not abstract.abstract

    def test_display_name(self):
        assert NodeType("n0", {"B", "A"}).display_name == "A+B"
        assert NodeType("n7", (), abstract=True).display_name == "ABSTRACT:n7"

    def test_copy_is_deep(self):
        original = NodeType("n0", {"X"})
        original.record_instance("a", {"k"})
        clone = original.copy()
        clone.record_instance("b", {"j"})
        clone.properties["k"].mandatory = True
        assert original.instance_count == 1
        assert original.properties["k"].mandatory is None


class TestEdgeType:
    def test_endpoints_recorded(self):
        edge_type = EdgeType("e0", {"KNOWS"})
        edge_type.record_endpoints("Person", "Person")
        edge_type.record_endpoints("Person", "Org.")
        assert edge_type.source_tokens == {"Person"}
        assert edge_type.target_tokens == {"Person", "Org."}

    def test_absorb_merges_cardinality_bounds(self):
        left = EdgeType("e0", {"R"})
        left.cardinality_bounds = CardinalityBounds(1, 1)
        left.cardinality = left.cardinality_bounds.classify()
        right = EdgeType("e1", {"R"})
        right.cardinality_bounds = CardinalityBounds(4, 1)
        left.absorb(right)
        assert left.cardinality_bounds == CardinalityBounds(4, 1)
        assert str(left.cardinality) == "0:N"


class TestSchemaGraph:
    def test_add_and_lookup(self):
        schema = SchemaGraph("s")
        node_type = schema.add_node_type(NodeType("n0", {"Person"}))
        assert schema.node_type("n0") is node_type
        assert schema.node_type_by_token("Person") is node_type

    def test_duplicate_id_rejected(self):
        schema = SchemaGraph()
        schema.add_node_type(NodeType("n0"))
        with pytest.raises(SchemaError):
            schema.add_node_type(NodeType("n0"))

    def test_missing_type_raises(self):
        with pytest.raises(SchemaError):
            SchemaGraph().node_type("nope")

    def test_new_type_ids_unique(self):
        schema = SchemaGraph()
        ids = {schema.new_type_id("n") for _ in range(100)}
        assert len(ids) == 100

    def test_edge_endpoints_resolution(self):
        schema = SchemaGraph()
        person = schema.add_node_type(NodeType("n0", {"Person"}))
        org = schema.add_node_type(NodeType("n1", {"Org."}))
        works = EdgeType("e0", {"WORKS_AT"})
        works.record_endpoints("Person", "Org.")
        schema.add_edge_type(works)
        sources, targets = schema.edge_endpoints(works)
        assert sources == [person]
        assert targets == [org]

    def test_assignments(self):
        schema = SchemaGraph()
        node_type = NodeType("n0", {"X"})
        node_type.record_instance("a", ())
        node_type.record_instance("b", ())
        schema.add_node_type(node_type)
        assert schema.node_assignments() == {"a": "n0", "b": "n0"}

    def test_summary(self):
        schema = SchemaGraph()
        node_type = NodeType("n0", (), abstract=True)
        node_type.record_instance("a", ())
        schema.add_node_type(node_type)
        summary = schema.summary()
        assert summary["node_types"] == 1
        assert summary["abstract_node_types"] == 1
        assert summary["node_instances"] == 1


class TestSubsumes:
    def test_reflexive(self):
        schema = SchemaGraph()
        schema.add_node_type(NodeType("n0", {"A"}))
        assert subsumes(schema, schema)

    def test_superset_subsumes(self):
        small = SchemaGraph()
        small.add_node_type(NodeType("n0", {"A"}))
        big = small.copy()
        extra = NodeType("n1", {"A"})
        extra.ensure_property("k")
        big.node_type("n0").absorb(extra)
        assert subsumes(big, small)
        assert not subsumes(small, big)

"""Unit tests for datatype inference (section 4.4 priority chain)."""

import pytest

from repro.schema.datatypes import (
    DataType,
    dominant_type,
    generalize,
    infer_type,
    infer_value_type,
    is_value_compatible,
)


class TestInferValueType:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (42, DataType.INTEGER),
            (-1, DataType.INTEGER),
            (3.0, DataType.INTEGER),  # integral float counts as integer
            (2.5, DataType.FLOAT),
            (True, DataType.BOOLEAN),
            (False, DataType.BOOLEAN),
            ("true", DataType.BOOLEAN),
            ("FALSE", DataType.BOOLEAN),
            ("2024-03-09", DataType.DATE),
            ("19/12/1999", DataType.DATE),  # the paper's Example 7 format
            ("2024-03-09T12:30:00", DataType.DATETIME),
            ("2024-03-09 12:30", DataType.DATETIME),
            ("2024-03-09T12:30:00.123Z", DataType.DATETIME),
            ("2024-03-09T12:30:00+02:00", DataType.DATETIME),
            ("hello", DataType.STRING),
            ("12abc", DataType.STRING),
            (None, DataType.STRING),
        ],
    )
    def test_priority_chain(self, value, expected):
        assert infer_value_type(value) is expected

    def test_bool_not_mistaken_for_int(self):
        # Python bool subclasses int; the chain must still say BOOLEAN.
        assert infer_value_type(True) is DataType.BOOLEAN

    def test_non_date_slash_string(self):
        assert infer_value_type("1/2") is DataType.STRING


class TestGeneralize:
    def test_same_type_identity(self):
        for data_type in DataType:
            assert generalize(data_type, data_type) is data_type

    def test_numeric_widening(self):
        assert generalize(DataType.INTEGER, DataType.FLOAT) is DataType.FLOAT
        assert generalize(DataType.FLOAT, DataType.INTEGER) is DataType.FLOAT

    def test_temporal_widening(self):
        assert generalize(DataType.DATE, DataType.DATETIME) is DataType.DATETIME

    def test_conflicts_fall_to_string(self):
        assert generalize(DataType.INTEGER, DataType.BOOLEAN) is DataType.STRING
        assert generalize(DataType.DATE, DataType.FLOAT) is DataType.STRING


class TestInferType:
    def test_homogeneous(self):
        assert infer_type([1, 2, 3]) is DataType.INTEGER

    def test_mixed_numeric(self):
        assert infer_type([1, 2.5]) is DataType.FLOAT

    def test_outlier_forces_string(self):
        assert infer_type([1, 2, "oops"]) is DataType.STRING

    def test_empty_defaults_to_string(self):
        assert infer_type([]) is DataType.STRING

    def test_dates(self):
        assert infer_type(["2020-01-01", "19/12/1999"]) is DataType.DATE


class TestDominantType:
    def test_most_frequent_wins(self):
        assert dominant_type([1, 2, 3, "x"]) is DataType.INTEGER

    def test_tie_breaks_by_declaration_order(self):
        assert dominant_type([1, "x"]) is DataType.INTEGER

    def test_empty(self):
        assert dominant_type([]) is DataType.STRING


class TestCompatibility:
    def test_string_accepts_everything(self):
        for value in (1, 2.5, True, "x", "2020-01-01"):
            assert is_value_compatible(value, DataType.STRING)

    def test_float_accepts_int(self):
        assert is_value_compatible(3, DataType.FLOAT)

    def test_int_rejects_float(self):
        assert not is_value_compatible(2.5, DataType.INTEGER)

    def test_datetime_accepts_date(self):
        assert is_value_compatible("2020-01-01", DataType.DATETIME)

    def test_date_rejects_datetime(self):
        assert not is_value_compatible("2020-01-01T10:00", DataType.DATE)
